// Determinism tests for the runtime-dispatched selection kernels.
//
// The kernels' contract (core/kernels/kernels.h) is that every dispatch
// target produces bit-identical doubles to the scalar reference — the
// blocked reduction order and the ascending-term-order dot product are
// the canonical definitions, not implementation details. These tests
// compare the Active() table against Scalar() on adversarial shapes
// (empty, single-lane, odd tails, long rows) and random data, and pin
// the span cosine to TermVector::Cosine. On a machine without AVX2/NEON
// (or under OPTSELECT_KERNELS=scalar, which CI forces in one matrix
// row) Active() == Scalar() and the comparisons are trivially exact —
// the point is that on a vector machine they STAY exact.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels/kernels.h"
#include "text/term_vector.h"

namespace optselect {
namespace core {
namespace kernels {
namespace {

std::vector<double> RandomRow(std::mt19937_64* rng, size_t n) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> row(n);
  for (double& v : row) v = dist(*rng);
  return row;
}

TEST(KernelsTest, ActiveTargetIsNamedAndResolved) {
  std::string name = ActiveName();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon") << name;
  EXPECT_EQ(name, Active().name);
  EXPECT_STREQ(Scalar().name, "scalar");
}

TEST(KernelsTest, WeightedRowSumMatchesScalarBitwise) {
  std::mt19937_64 rng(1234);
  // Every residue class mod 4 (full blocks, tails of 1–3) plus long
  // rows where a vector unit actually engages.
  for (size_t m : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u, 256u}) {
    std::vector<double> row = RandomRow(&rng, m);
    std::vector<double> prob = RandomRow(&rng, m);
    double got = Active().weighted_row_sum(row.data(), prob.data(), m);
    double want = Scalar().weighted_row_sum(row.data(), prob.data(), m);
    EXPECT_EQ(got, want) << "m=" << m;  // EQ on doubles: bit-identity
  }
}

TEST(KernelsTest, WeightedRowSumUsesTheBlockedOrder) {
  // The canonical definition spelled out longhand: stripe accumulators
  // combined (acc0+acc1)+(acc2+acc3). Any kernel drifting to a plain
  // sequential sum would differ in the low bits on data like this.
  std::mt19937_64 rng(77);
  std::vector<double> row = RandomRow(&rng, 11);
  std::vector<double> prob = RandomRow(&rng, 11);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < row.size(); ++j) acc[j & 3] += prob[j] * row[j];
  double want = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  EXPECT_EQ(Active().weighted_row_sum(row.data(), prob.data(), row.size()),
            want);
  EXPECT_EQ(Scalar().weighted_row_sum(row.data(), prob.data(), row.size()),
            want);
}

TEST(KernelsTest, OverallFromWeightedMatchesScalarBitwise) {
  std::mt19937_64 rng(4321);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 17u, 64u, 200u}) {
    std::vector<double> rel = RandomRow(&rng, n);
    std::vector<double> weighted = RandomRow(&rng, n);
    std::vector<double> got(n, -1.0), want(n, -2.0);
    const double lambda = 0.5, m_scale = 3.0;
    Active().overall_from_weighted(rel.data(), weighted.data(), n, lambda,
                                   m_scale, got.data());
    Scalar().overall_from_weighted(rel.data(), weighted.data(), n, lambda,
                                   m_scale, want.data());
    EXPECT_EQ(got, want) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(want[i],
                CombineOverall(rel[i], weighted[i], lambda, m_scale));
    }
  }
}

TEST(KernelsTest, OverallFromRowsMatchesScalarBitwise) {
  std::mt19937_64 rng(99);
  for (size_t n : {0u, 1u, 4u, 9u, 40u}) {
    for (size_t m : {1u, 2u, 3u, 4u, 5u, 8u, 21u}) {
      std::vector<double> rel = RandomRow(&rng, n);
      std::vector<double> rows = RandomRow(&rng, n * m);
      std::vector<double> prob = RandomRow(&rng, m);
      std::vector<double> got(n, -1.0), want(n, -2.0);
      const double lambda = 0.7;
      Active().overall_from_rows(rel.data(), rows.data(), prob.data(), n, m,
                                 lambda, got.data());
      Scalar().overall_from_rows(rel.data(), rows.data(), prob.data(), n, m,
                                 lambda, want.data());
      EXPECT_EQ(got, want) << "n=" << n << " m=" << m;
      // And the composition law: overall_from_rows == combine over
      // weighted_row_sum, bitwise.
      for (size_t i = 0; i < n; ++i) {
        double w = Scalar().weighted_row_sum(rows.data() + i * m,
                                             prob.data(), m);
        EXPECT_EQ(want[i], CombineOverall(rel[i], w, lambda,
                                          static_cast<double>(m)));
      }
    }
  }
}

/// Builds a sorted-unique AoS entry list over the given term ids.
std::vector<text::TermVector::Entry> Entries(
    const std::vector<uint32_t>& terms, std::mt19937_64* rng) {
  std::uniform_real_distribution<double> dist(0.25, 2.0);
  std::vector<text::TermVector::Entry> e;
  e.reserve(terms.size());
  for (uint32_t t : terms) e.push_back({t, dist(*rng)});
  return e;
}

TEST(KernelsTest, DotAosSoaMatchesScalarAcrossIntersectionPatterns) {
  std::mt19937_64 rng(2026);
  struct Case {
    std::vector<uint32_t> a, b;
  };
  std::vector<Case> cases = {
      {{}, {}},                                  // both empty
      {{1, 2, 3}, {}},                           // one side empty
      {{1, 2, 3}, {1, 2, 3}},                    // identical
      {{1, 3, 5, 7}, {2, 4, 6, 8}},              // disjoint interleave
      {{1, 2, 3, 4}, {100, 200}},                // disjoint ranges
      {{1, 50, 100}, {50}},                      // single match mid-list
      {{0, 7, 9, 13, 40, 41, 42}, {7, 13, 42}},  // sparse subset
  };
  // Plus long random sorted lists with ~50% overlap.
  {
    std::vector<uint32_t> a, b;
    for (uint32_t t = 0; t < 300; ++t) {
      if (rng() % 2) a.push_back(t);
      if (rng() % 2) b.push_back(t);
    }
    cases.push_back({std::move(a), std::move(b)});
  }
  for (const Case& c : cases) {
    std::vector<text::TermVector::Entry> a = Entries(c.a, &rng);
    std::vector<text::TermVector::Entry> b = Entries(c.b, &rng);
    std::vector<uint32_t> b_terms;
    std::vector<double> b_weights;
    for (const auto& [t, w] : b) {
      b_terms.push_back(t);
      b_weights.push_back(w);
    }
    double got = Active().dot_aos_soa(a.data(), a.size(), b_terms.data(),
                                      b_weights.data(), b_terms.size());
    double want = Scalar().dot_aos_soa(a.data(), a.size(), b_terms.data(),
                                       b_weights.data(), b_terms.size());
    EXPECT_EQ(got, want);
    // The scalar AoS·SoA dot must itself match TermVector::Dot — same
    // ascending-order merge.
    text::TermVector va = text::TermVector::FromEntries(a);
    text::TermVector vb = text::TermVector::FromEntries(b);
    EXPECT_EQ(want, va.Dot(vb));
  }
}

TEST(KernelsTest, CosineAosSoaMatchesTermVectorCosineBitwise) {
  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> a_terms, b_terms;
    for (uint32_t t = 0; t < 64; ++t) {
      if (rng() % 3) a_terms.push_back(t);
      if (rng() % 3) b_terms.push_back(t);
    }
    text::TermVector va =
        text::TermVector::FromEntries(Entries(a_terms, &rng));
    text::TermVector vb =
        text::TermVector::FromEntries(Entries(b_terms, &rng));

    // Build the SoA twin of vb carrying vb's exact norm bits — the
    // store-v4 shape.
    std::vector<uint32_t> soa_terms;
    std::vector<double> soa_weights;
    for (const auto& [t, w] : vb.entries()) {
      soa_terms.push_back(t);
      soa_weights.push_back(w);
    }
    text::TermVectorSpan span;
    span.terms = soa_terms.data();
    span.weights = soa_weights.data();
    span.size = static_cast<uint32_t>(soa_terms.size());
    span.norm = vb.norm();

    EXPECT_EQ(CosineAosSoa(va, span), va.Cosine(vb)) << "trial " << trial;
  }
  // Zero-norm handling mirrors TermVector::Cosine: either side empty
  // gives exactly 0.
  text::TermVector empty;
  text::TermVectorSpan empty_span;
  EXPECT_EQ(CosineAosSoa(empty, empty_span), 0.0);
}

}  // namespace
}  // namespace kernels
}  // namespace core
}  // namespace optselect
