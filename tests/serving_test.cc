// Tests for the query-serving subsystem: cache keys, the sharded LRU
// cache, the streaming latency histogram, the bounded request queue, and
// the ServingNode end-to-end (cache/batching bit-identity, shutdown with
// in-flight requests, stats consistency under concurrent load).

#include <atomic>
#include <cctype>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/testbed.h"
#include "serving/cache_key.h"
#include "serving/latency_histogram.h"
#include "serving/replay.h"
#include "serving/request_queue.h"
#include "serving/result_cache.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"

namespace optselect {
namespace serving {
namespace {

// ------------------------------------------------------------- cache key

TEST(CacheKeyTest, NormalizeQueryCanonicalizes) {
  EXPECT_EQ(NormalizeQuery("  Apple  IPhone "), "apple iphone");
  EXPECT_EQ(NormalizeQuery("apple iphone"), "apple iphone");
  EXPECT_EQ(NormalizeQuery("\tA\n b\t"), "a b");
  EXPECT_EQ(NormalizeQuery("   "), "");
  EXPECT_EQ(NormalizeQuery(""), "");
}

TEST(CacheKeyTest, FingerprintSeparatesParams) {
  pipeline::PipelineParams a;
  pipeline::PipelineParams b = a;
  EXPECT_EQ(ParamsFingerprint(a), ParamsFingerprint(b));
  b.diversify.k = a.diversify.k + 1;
  EXPECT_NE(ParamsFingerprint(a), ParamsFingerprint(b));
  b = a;
  b.diversify.lambda += 0.01;
  EXPECT_NE(ParamsFingerprint(a), ParamsFingerprint(b));
  b = a;
  b.threshold_c += 0.1;
  EXPECT_NE(ParamsFingerprint(a), ParamsFingerprint(b));

  EXPECT_NE(MakeCacheKey("q", ParamsFingerprint(a)),
            MakeCacheKey("q", ParamsFingerprint(b)));
  EXPECT_EQ(MakeCacheKey("q", ParamsFingerprint(a)),
            MakeCacheKey("q", ParamsFingerprint(a)));
}

// ------------------------------------------------------------- LRU cache

TEST(ResultCacheTest, HitMissAndCounters) {
  ShardedLruCache<int> cache(ResultCacheOptions{4, 1});
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", std::make_shared<int>(1));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  ResultCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_DOUBLE_EQ(st.HitRate(), 0.5);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard of capacity 2 so eviction order is fully deterministic.
  ShardedLruCache<int> cache(ResultCacheOptions{2, 1});
  cache.Put("a", std::make_shared<int>(1));
  cache.Put("b", std::make_shared<int>(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh "a" ⇒ "b" is now LRU
  cache.Put("c", std::make_shared<int>(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);  // evicted
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, PutReplacesAndEvictedValueStaysAlive) {
  ShardedLruCache<int> cache(ResultCacheOptions{1, 1});
  cache.Put("a", std::make_shared<int>(1));
  auto held = cache.Get("a");
  cache.Put("b", std::make_shared<int>(2));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, 1);  // the handed-out pointer is still valid
  cache.Put("b", std::make_shared<int>(3));  // replace, no eviction
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(*cache.Get("b"), 3);
}

// ------------------------------------------------------------- histogram

TEST(LatencyHistogramTest, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.MeanMicros(), 500.5, 0.01);
  // Log-linear bucketing bounds relative error at ~2%.
  EXPECT_NEAR(h.PercentileMicros(0.50), 500.0, 500.0 * 0.03);
  EXPECT_NEAR(h.PercentileMicros(0.95), 950.0, 950.0 * 0.03);
  EXPECT_NEAR(h.PercentileMicros(0.99), 990.0, 990.0 * 0.03);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileMicros(0.5), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesExactAndNegativeClamped) {
  LatencyHistogram h;
  h.Record(-5);
  h.Record(0);
  h.Record(7);
  h.Record(7);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(1.0), 7.0);  // exact: 7 < 64
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.25), 0.0);
}

// ----------------------------------------------------------------- queue

TEST(RequestQueueTest, TryPushRespectsCapacityAndPopBatchDrains) {
  BoundedRequestQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));  // full
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 2), 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  q.Close();
  EXPECT_FALSE(q.TryPush(5));            // closed
  EXPECT_EQ(q.PopBatch(&batch, 8), 1u);  // drains the remaining item
  EXPECT_EQ(batch, (std::vector<int>{3}));
  EXPECT_EQ(q.PopBatch(&batch, 8), 0u);  // closed + empty ⇒ exit signal
}

TEST(RequestQueueTest, CloseWakesBlockedConsumer) {
  BoundedRequestQueue<int> q(2);
  std::atomic<int> popped{-1};
  std::thread consumer([&] {
    std::vector<int> batch;
    popped = static_cast<int>(q.PopBatch(&batch, 4));
  });
  q.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 0);
}

// ----------------------------------------------------------- serving node

class ServingNodeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static ServingConfig BaseConfig() {
    ServingConfig config;
    config.num_workers = 2;
    config.queue_capacity = 256;
    config.max_batch = 4;
    config.params.num_candidates = 100;
    config.params.diversify.k = 10;
    return config;
  }

  /// An ambiguous query (present in the store) and a passthrough query.
  static std::string StoredQuery() {
    return store_->entries().begin()->first;
  }
  static std::string NoiseQuery() {
    return testbed_->universe().noise_queries[0];
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
};

pipeline::Testbed* ServingNodeTest::testbed_ = nullptr;
store::DiversificationStore* ServingNodeTest::store_ = nullptr;

TEST_F(ServingNodeTest, DiversifiesStoredAndPassesThroughUnknown) {
  ServingNode node(store_, testbed_, BaseConfig());

  ServeResult stored = node.Serve(StoredQuery());
  EXPECT_TRUE(stored.ok);
  EXPECT_TRUE(stored.diversified);
  EXPECT_GE(stored.num_specializations, 2u);
  EXPECT_FALSE(stored.ranking.empty());

  ServeResult noise = node.Serve(NoiseQuery());
  EXPECT_TRUE(noise.ok);
  EXPECT_FALSE(noise.diversified);
  EXPECT_EQ(noise.num_specializations, 0u);

  ServingStats stats = node.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.diversified, 1u);
  EXPECT_EQ(stats.passthrough, 1u);
}

TEST_F(ServingNodeTest, CachedResultsBitIdenticalToUncached) {
  ServingConfig cached_config = BaseConfig();
  cached_config.enable_cache = true;
  ServingConfig uncached_config = BaseConfig();
  uncached_config.enable_cache = false;
  ServingNode cached(store_, testbed_, cached_config);
  ServingNode uncached(store_, testbed_, uncached_config);

  std::vector<std::string> queries;
  for (const auto& [query, entry] : store_->entries()) {
    queries.push_back(query);
  }
  queries.push_back(NoiseQuery());

  for (const std::string& q : queries) {
    ServeResult cold = cached.Serve(q);
    ServeResult warm = cached.Serve(q);   // must come from the cache
    ServeResult direct = uncached.Serve(q);
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(cold.ranking, direct.ranking) << q;
    EXPECT_EQ(warm.ranking, direct.ranking) << q;
    EXPECT_EQ(warm.diversified, direct.diversified) << q;
  }

  ServingStats stats = cached.Stats();
  EXPECT_GE(stats.cache_hits, queries.size());
  EXPECT_GT(stats.cache_hit_rate, 0.0);
  EXPECT_EQ(uncached.Stats().cache_hits, 0u);
}

TEST_F(ServingNodeTest, StreamingColdPathBitIdenticalToMaterialized) {
  // The fixture store compiles plans at the default pipeline params,
  // but BaseConfig serves at num_candidates = 100 — incompatible, so
  // every stored query takes the cold path. With streaming on that
  // path must scan-and-maintain; with it off, materialize-then-select;
  // the rankings must match bit for bit either way.
  ServingConfig streaming_config = BaseConfig();
  streaming_config.streaming_cold_path = true;
  streaming_config.enable_cache = false;
  ServingConfig materialized_config = BaseConfig();
  materialized_config.streaming_cold_path = false;
  materialized_config.enable_cache = false;
  ServingNode streaming(store_, testbed_, streaming_config);
  ServingNode materialized(store_, testbed_, materialized_config);

  size_t diversified = 0;
  for (const auto& [query, entry] : store_->entries()) {
    ServeResult s = streaming.Serve(query);
    ServeResult m = materialized.Serve(query);
    EXPECT_EQ(s.ranking, m.ranking) << query;
    EXPECT_EQ(s.diversified, m.diversified) << query;
    EXPECT_EQ(s.num_specializations, m.num_specializations) << query;
    EXPECT_FALSE(m.streaming_served) << query;
    if (s.diversified) {
      ++diversified;
      EXPECT_TRUE(s.streaming_served) << query;
      EXPECT_FALSE(s.plan_served) << query;
    }
  }
  ASSERT_GT(diversified, 0u);

  // Passthrough queries never touch the selector on either node.
  ServeResult noise = streaming.Serve(NoiseQuery());
  EXPECT_FALSE(noise.streaming_served);
  EXPECT_EQ(noise.ranking, materialized.Serve(NoiseQuery()).ranking);

  ServingStats streaming_stats = streaming.Stats();
  EXPECT_EQ(streaming_stats.streaming_served, diversified);
  EXPECT_LE(streaming_stats.streaming_served, streaming_stats.diversified);
  EXPECT_EQ(materialized.Stats().streaming_served, 0u);
}

TEST_F(ServingNodeTest, StreamingFallsBackUnderIntraQueryParallelism) {
  // Sharded selection needs the full utility matrix, so the node must
  // quietly use materialize-then-select — with identical rankings —
  // when intra_query_threads > 1, even with the streaming flag on.
  ServingConfig sharded_config = BaseConfig();
  sharded_config.streaming_cold_path = true;
  sharded_config.intra_query_threads = 2;
  ServingNode sharded(store_, testbed_, sharded_config);
  ServingNode reference(store_, testbed_, BaseConfig());

  ServeResult a = sharded.Serve(StoredQuery());
  ServeResult b = reference.Serve(StoredQuery());
  EXPECT_TRUE(a.diversified);
  EXPECT_FALSE(a.streaming_served);
  EXPECT_EQ(a.ranking, b.ranking);
  EXPECT_EQ(sharded.Stats().streaming_served, 0u);
}

TEST_F(ServingNodeTest, OwningStoreConstructorServesIdentically) {
  // The deployment shape: the node owns a store loaded from disk. A
  // copy of the shared store stands in for DiversificationStore::Load.
  store::DiversificationStore loaded = *store_;
  ServingNode owning(std::move(loaded), &testbed_->searcher(),
                     &testbed_->snippets(), &testbed_->analyzer(),
                     &testbed_->corpus().store, BaseConfig());
  ServingNode borrowing(store_, testbed_, BaseConfig());
  ServeResult a = owning.Serve(StoredQuery());
  ServeResult b = borrowing.Serve(StoredQuery());
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(a.diversified);
  EXPECT_EQ(a.ranking, b.ranking);
  EXPECT_EQ(owning.store().size(), store_->size());
}

TEST_F(ServingNodeTest, NormalizedQueriesShareACacheSlot) {
  ServingNode node(store_, testbed_, BaseConfig());
  std::string q = StoredQuery();
  std::string shouty = "  " + std::string(q);
  for (char& c : shouty) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  ServeResult first = node.Serve(q);
  ServeResult second = node.Serve(shouty + "  ");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.ranking, second.ranking);
}

TEST_F(ServingNodeTest, BatchingOnOffProducesIdenticalResults) {
  ServingConfig unbatched_config = BaseConfig();
  unbatched_config.max_batch = 1;
  unbatched_config.enable_cache = false;
  ServingConfig batched_config = BaseConfig();
  batched_config.max_batch = 16;
  batched_config.enable_cache = false;
  batched_config.num_workers = 1;  // force queue buildup ⇒ real batches
  ServingNode unbatched(store_, testbed_, unbatched_config);
  ServingNode batched(store_, testbed_, batched_config);

  std::vector<std::string> mix;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& [query, entry] : store_->entries()) mix.push_back(query);
    mix.push_back(NoiseQuery());
  }

  auto run = [&](ServingNode* node) {
    std::map<size_t, ServeResult> results;
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    size_t accepted = 0;
    for (size_t i = 0; i < mix.size(); ++i) {
      bool ok = node->Submit(mix[i], [&, i](ServeResult r) {
        std::lock_guard<std::mutex> lock(mu);
        results[i] = std::move(r);
        ++done;
        cv.notify_one();
      });
      EXPECT_TRUE(ok);
      if (ok) ++accepted;
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == accepted; });
    return results;
  };

  std::map<size_t, ServeResult> a = run(&unbatched);
  std::map<size_t, ServeResult> b = run(&batched);
  ASSERT_EQ(a.size(), mix.size());
  ASSERT_EQ(b.size(), mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(a[i].ranking, b[i].ranking) << mix[i];
    EXPECT_EQ(a[i].diversified, b[i].diversified) << mix[i];
  }
  // With one worker and a deep queue, duplicates inside a wakeup are
  // computed once even though the cache is off.
  ServingStats stats = batched.Stats();
  EXPECT_GT(stats.mean_batch, 1.0);
  EXPECT_GT(stats.batch_dedup_hits, 0u);
}

TEST_F(ServingNodeTest, ShutdownDrainsInFlightRequests) {
  ServingConfig config = BaseConfig();
  config.num_workers = 1;
  config.max_batch = 2;
  auto node = std::make_unique<ServingNode>(store_, testbed_, config);

  std::atomic<size_t> callbacks{0};
  size_t submitted = 0;
  for (int i = 0; i < 64; ++i) {
    if (node->Submit(i % 2 == 0 ? StoredQuery() : NoiseQuery(),
                     [&](ServeResult r) {
                       EXPECT_TRUE(r.ok);
                       callbacks.fetch_add(1);
                     })) {
      ++submitted;
    }
  }
  node->Shutdown();  // must drain: every accepted request answered
  EXPECT_EQ(callbacks.load(), submitted);
  EXPECT_EQ(node->Stats().completed, submitted);

  // Post-shutdown: submission is rejected, Serve fails fast, Shutdown
  // stays idempotent, and the destructor is safe.
  EXPECT_FALSE(node->Submit(StoredQuery(), [](ServeResult) {}));
  EXPECT_FALSE(node->Serve(StoredQuery()).ok);
  node->Shutdown();
  node.reset();
}

// ---------------------------------------------------------------- replay

TEST_F(ServingNodeTest, ReplayMixDrivesEveryRequestToCompletion) {
  ServingConfig config = BaseConfig();
  config.queue_capacity = 256;  // ≥ mix size ⇒ no shedding
  ServingNode node(store_, testbed_, config);

  std::vector<std::string> mix;
  for (int rep = 0; rep < 8; ++rep) {
    mix.push_back(StoredQuery());
    mix.push_back(NoiseQuery());
  }
  ReplayOutcome out = ReplayMix(&node, mix);
  EXPECT_EQ(out.accepted, mix.size());
  EXPECT_GT(out.wall_ms, 0.0);
  EXPECT_GT(out.qps, 0.0);
  // QPS is accepted / wall, by definition.
  EXPECT_NEAR(out.qps, 1000.0 * static_cast<double>(out.accepted) /
                           out.wall_ms,
              1e-6);

  ServingStats stats = node.Stats();
  EXPECT_EQ(stats.accepted, mix.size());
  EXPECT_EQ(stats.completed, mix.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServingNodeTest, ReplayMixEmptyMixReturnsImmediately) {
  ServingNode node(store_, testbed_, BaseConfig());
  ReplayOutcome out = ReplayMix(&node, {});
  EXPECT_EQ(out.accepted, 0u);
  EXPECT_EQ(out.qps, 0.0);
  EXPECT_EQ(node.Stats().accepted, 0u);
}

TEST_F(ServingNodeTest, ReplayMixCountsShedRequests) {
  // A shut-down node rejects every submission: ReplayMix must report
  // zero accepted and still return (no wait on callbacks that will
  // never fire).
  ServingNode node(store_, testbed_, BaseConfig());
  node.Shutdown();
  ReplayOutcome out =
      ReplayMix(&node, {StoredQuery(), NoiseQuery(), StoredQuery()});
  EXPECT_EQ(out.accepted, 0u);
  EXPECT_EQ(node.Stats().rejected, 3u);
}

TEST_F(ServingNodeTest, StatsConsistentUnderConcurrentLoad) {
  ServingConfig config = BaseConfig();
  config.num_workers = 3;
  ServingNode node(store_, testbed_, config);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 25;
  std::vector<std::string> queries = {StoredQuery(), NoiseQuery()};
  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        ServeResult r = node.Serve(queries[(c + i) % queries.size()]);
        if (r.ok) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  constexpr uint64_t kTotal = kClients * kPerClient;
  EXPECT_EQ(ok_count.load(), kTotal);
  ServingStats stats = node.Stats();
  EXPECT_EQ(stats.accepted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.diversified + stats.passthrough, kTotal);
  // Every completed request is either a cache lookup (hit or miss) or a
  // batch-local dedup hit.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.batch_dedup_hits,
            kTotal);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.batched_requests, kTotal);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace serving
}  // namespace optselect
