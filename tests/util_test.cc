// Unit tests for the util module: Status/Result, strings, RNG, Zipf,
// math helpers, and the table printer.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace optselect {
namespace util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kCorruption}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// --------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  leopard   tank \t os"),
            (std::vector<std::string>{"leopard", "tank", "os"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-123"), "abc-123");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("optselect", "opt"));
  EXPECT_FALSE(StartsWith("opt", "optselect"));
  EXPECT_TRUE(EndsWith("table2.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table2.csv"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// ------------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen, (std::set<int64_t>{-2, -1, 0, 1, 2}));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0, ss = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    ss += x * x;
  }
  double mean = sum / n;
  double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int round = 0; round < 20; ++round) {
    std::vector<size_t> picks = rng.SampleWithoutReplacement(100, 30);
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 30u);
    for (size_t p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullUniverse) {
  Rng rng(41);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

// ------------------------------------------------------------------ Zipf

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < z.n(); ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfSampler z(50, 1.3);
  for (size_t i = 1; i < z.n(); ++i) {
    EXPECT_LE(z.Pmf(i), z.Pmf(i - 1));
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (size_t i = 0; i < z.n(); ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfSampler z(5, 1.0);
  Rng rng(43);
  std::vector<int> counts(5, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), z.Pmf(i), 0.01);
  }
}

TEST(ZipfTest, HigherSkewConcentratesHead) {
  ZipfSampler flat(100, 0.5);
  ZipfSampler steep(100, 2.0);
  EXPECT_GT(steep.Pmf(0), flat.Pmf(0));
}

// ------------------------------------------------------------------ Math

TEST(MathTest, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(MathTest, HarmonicTableMatchesScalar) {
  std::vector<double> table = HarmonicTable(20);
  ASSERT_EQ(table.size(), 21u);
  for (size_t i = 0; i <= 20; ++i) {
    EXPECT_NEAR(table[i], HarmonicNumber(i), 1e-12);
  }
}

TEST(MathTest, Log2Discount) {
  EXPECT_DOUBLE_EQ(Log2Discount(1), 1.0);  // log2(2)
  EXPECT_NEAR(Log2Discount(3), 2.0, 1e-12);  // log2(4)
}

TEST(MathTest, SafeDiv) {
  EXPECT_DOUBLE_EQ(SafeDiv(6, 3), 2.0);
  EXPECT_DOUBLE_EQ(SafeDiv(6, 0), 0.0);
  EXPECT_DOUBLE_EQ(SafeDiv(6, 0, -1.0), -1.0);
}

TEST(MathTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MathTest, OlsSlopeExactLine) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // slope 2
  EXPECT_NEAR(OlsSlope(x, y), 2.0, 1e-12);
}

TEST(MathTest, OlsSlopeDegenerate) {
  EXPECT_DOUBLE_EQ(OlsSlope({1}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(OlsSlope({2, 2, 2}, {1, 5, 9}), 0.0);
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  int64_t a = t.ElapsedMicros();
  int64_t b = t.ElapsedMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, AccumulatorMean) {
  TimerAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean_ms(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.mean_ms(), 3.0);
  EXPECT_EQ(acc.count(), 2);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp;
  tp.SetHeader({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"longer", "22"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // All lines equal width for the data rows' columns.
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Num(2.0, 1), "2.0");
}

TEST(TablePrinterTest, SeparatorAndRaggedRows) {
  TablePrinter tp;
  tp.AddRow({"a", "b", "c"});
  tp.AddSeparator();
  tp.AddRow({"only"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("only"), std::string::npos);
}

}  // namespace
}  // namespace util
}  // namespace optselect
