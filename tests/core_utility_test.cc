// Unit and property tests for the core utility function (Definition 2)
// and the bounded heaps backing Algorithm 2.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/bounded_heap.h"
#include "core/candidate.h"
#include "core/utility.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace optselect {
namespace core {
namespace {

using text::TermVector;

// ------------------------------------------------------------- BoundedTopK

TEST(BoundedTopKTest, KeepsLargestKeys) {
  BoundedTopK<int> heap(3);
  for (int i = 0; i < 10; ++i) {
    heap.Push(static_cast<double>(i), i);
  }
  auto out = heap.ExtractDescending();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 9);
  EXPECT_EQ(out[1].value, 8);
  EXPECT_EQ(out[2].value, 7);
}

TEST(BoundedTopKTest, ZeroCapacityRejectsAll) {
  BoundedTopK<int> heap(0);
  EXPECT_FALSE(heap.Push(1.0, 1));
  EXPECT_TRUE(heap.empty());
}

TEST(BoundedTopKTest, PushReportsRetention) {
  BoundedTopK<int> heap(2);
  EXPECT_TRUE(heap.Push(5.0, 5));
  EXPECT_TRUE(heap.Push(7.0, 7));
  EXPECT_FALSE(heap.Push(1.0, 1));   // below current min
  EXPECT_TRUE(heap.Push(6.0, 6));    // evicts 5
  auto out = heap.ExtractDescending();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, 7);
  EXPECT_EQ(out[1].value, 6);
}

TEST(BoundedTopKTest, MinKeyTracksSmallestRetained) {
  BoundedTopK<int> heap(2);
  heap.Push(3.0, 3);
  heap.Push(9.0, 9);
  EXPECT_DOUBLE_EQ(heap.min_key(), 3.0);
  heap.Push(5.0, 5);
  EXPECT_DOUBLE_EQ(heap.min_key(), 5.0);
}

// Property: against a shuffled stream, the keeper returns exactly the
// top-capacity keys in descending order.
class BoundedTopKPropertyTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Capacities, BoundedTopKPropertyTest,
                         ::testing::Values(1, 2, 5, 16, 64, 333));

TEST_P(BoundedTopKPropertyTest, MatchesSortOnRandomStreams) {
  const size_t capacity = GetParam();
  util::Rng rng(1234 + capacity);
  for (int round = 0; round < 5; ++round) {
    const size_t n = 50 + rng.Uniform(500);
    std::vector<double> keys(n);
    for (double& k : keys) k = rng.UniformDouble() * 100.0;

    BoundedTopK<size_t> heap(capacity);
    for (size_t i = 0; i < n; ++i) heap.Push(keys[i], i);

    std::vector<double> sorted = keys;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    sorted.resize(std::min(capacity, n));

    auto out = heap.ExtractDescending();
    ASSERT_EQ(out.size(), sorted.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i].key, sorted[i]) << "position " << i;
    }
  }
}

// ------------------------------------------------------------- RawUtility

TEST(UtilityTest, RawUtilityHandComputed) {
  // d identical to both reference docs: U = 1/1 + 1/2 = 1.5.
  TermVector d = TermVector::FromTermIds({1, 2});
  std::vector<TermVector> rq = {d, d};
  EXPECT_NEAR(UtilityComputer::RawUtility(d, rq), 1.5, 1e-12);
}

TEST(UtilityTest, RawUtilityRankDiscount) {
  TermVector d = TermVector::FromTermIds({1});
  TermVector same = TermVector::FromTermIds({1});
  TermVector other = TermVector::FromTermIds({9});
  // Identical doc at rank 1 vs rank 2: utilities 1 vs 0.5.
  EXPECT_NEAR(UtilityComputer::RawUtility(d, {same, other}), 1.0, 1e-12);
  EXPECT_NEAR(UtilityComputer::RawUtility(d, {other, same}), 0.5, 1e-12);
}

TEST(UtilityTest, NormalizedUtilityInUnitInterval) {
  util::Rng rng(777);
  UtilityComputer computer;
  for (int round = 0; round < 50; ++round) {
    std::vector<text::TermVector::Entry> de;
    for (int t = 0; t < 5; ++t) {
      de.emplace_back(static_cast<text::TermId>(rng.Uniform(20)),
                      rng.UniformDouble() + 0.01);
    }
    TermVector d = TermVector::FromEntries(de);
    std::vector<TermVector> rq;
    for (int j = 0; j < 8; ++j) {
      std::vector<text::TermVector::Entry> re;
      for (int t = 0; t < 5; ++t) {
        re.emplace_back(static_cast<text::TermId>(rng.Uniform(20)),
                        rng.UniformDouble() + 0.01);
      }
      rq.push_back(TermVector::FromEntries(re));
    }
    double u = computer.NormalizedUtility(d, rq);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-12);
  }
}

TEST(UtilityTest, PerfectMatchNormalizesToOne) {
  // d at distance 0 from every reference doc ⇒ U = H_n ⇒ Ũ = 1.
  TermVector d = TermVector::FromTermIds({4, 5});
  std::vector<TermVector> rq(7, d);
  UtilityComputer computer;
  EXPECT_NEAR(computer.NormalizedUtility(d, rq), 1.0, 1e-12);
}

TEST(UtilityTest, EmptyReferenceListYieldsZero) {
  TermVector d = TermVector::FromTermIds({1});
  UtilityComputer computer;
  EXPECT_DOUBLE_EQ(computer.NormalizedUtility(d, {}), 0.0);
}

TEST(UtilityTest, ThresholdForcesZero) {
  TermVector d = TermVector::FromTermIds({1});
  TermVector weak = TermVector::FromEntries({{1, 1.0}, {2, 10.0}});
  std::vector<TermVector> rq = {weak};
  UtilityComputer no_threshold;
  double u = no_threshold.NormalizedUtility(d, rq);
  ASSERT_GT(u, 0.0);
  ASSERT_LT(u, 0.75);

  UtilityComputer thresholded(UtilityComputer::Options{0.75});
  EXPECT_DOUBLE_EQ(thresholded.NormalizedUtility(d, rq), 0.0);

  // Values above the threshold pass through unchanged.
  UtilityComputer mild(UtilityComputer::Options{u / 2});
  EXPECT_NEAR(mild.NormalizedUtility(d, rq), u, 1e-12);
}

// ------------------------------------------------------------ UtilityMatrix

DiversificationInput TinyInput() {
  DiversificationInput input;
  input.query = "root";
  TermVector a = TermVector::FromTermIds({1, 2});
  TermVector b = TermVector::FromTermIds({3, 4});
  input.candidates.push_back(Candidate{0, 1.0, a});
  input.candidates.push_back(Candidate{1, 0.5, b});

  SpecializationProfile s0;
  s0.query = "root alpha";
  s0.probability = 0.7;
  s0.results = {a};  // only candidate 0 matches
  SpecializationProfile s1;
  s1.query = "root beta";
  s1.probability = 0.3;
  s1.results = {b};  // only candidate 1 matches
  input.specializations = {s0, s1};
  return input;
}

TEST(UtilityMatrixTest, ComputeFillsExpectedCells) {
  DiversificationInput input = TinyInput();
  UtilityComputer computer;
  UtilityMatrix m = computer.Compute(input);
  ASSERT_EQ(m.num_candidates(), 2u);
  ASSERT_EQ(m.num_specializations(), 2u);
  EXPECT_NEAR(m.At(0, 0), 1.0, 1e-12);  // identical, single ref, H_1 = 1
  EXPECT_NEAR(m.At(1, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);    // orthogonal
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(UtilityMatrixTest, WeightedRowSum) {
  DiversificationInput input = TinyInput();
  UtilityMatrix m = UtilityComputer().Compute(input);
  std::vector<double> probs = {0.7, 0.3};
  EXPECT_NEAR(m.WeightedRowSum(0, probs.data()), 0.7, 1e-12);
  EXPECT_NEAR(m.WeightedRowSum(1, probs.data()), 0.3, 1e-12);
}

TEST(UtilityMatrixTest, ThresholdedCopyZeroesSmallValues) {
  UtilityMatrix m(2, 2);
  m.Set(0, 0, 0.6);
  m.Set(0, 1, 0.2);
  m.Set(1, 0, 0.35);
  m.Set(1, 1, 0.0);
  UtilityMatrix t = m.Thresholded(0.3);
  EXPECT_DOUBLE_EQ(t.At(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 0.35);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 0.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.2);
}

TEST(UtilityMatrixTest, ThresholdedMatchesDirectCompute) {
  DiversificationInput input = TinyInput();
  input.specializations[1].results = {
      TermVector::FromEntries({{1, 1.0}, {3, 1.0}, {4, 1.0}})};
  const double c = 0.5;
  UtilityMatrix direct =
      UtilityComputer(UtilityComputer::Options{c}).Compute(input);
  UtilityMatrix post = UtilityComputer().Compute(input).Thresholded(c);
  for (size_t i = 0; i < direct.num_candidates(); ++i) {
    for (size_t j = 0; j < direct.num_specializations(); ++j) {
      EXPECT_DOUBLE_EQ(direct.At(i, j), post.At(i, j));
    }
  }
}

TEST(UtilityMatrixTest, ThresholdAppliedInBulkCompute) {
  DiversificationInput input = TinyInput();
  // Make candidate 0 weakly similar to specialization 1.
  input.specializations[1].results = {
      TermVector::FromEntries({{1, 1.0}, {3, 1.0}, {4, 1.0}})};
  UtilityMatrix loose = UtilityComputer().Compute(input);
  ASSERT_GT(loose.At(0, 1), 0.0);
  UtilityComputer strict(UtilityComputer::Options{0.99});
  UtilityMatrix tight = strict.Compute(input);
  EXPECT_DOUBLE_EQ(tight.At(0, 1), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace optselect
