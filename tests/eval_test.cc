// Unit tests for the eval module: α-NDCG, IA-P, NDCG, Wilcoxon, and the
// batch evaluator.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/qrels.h"
#include "corpus/trec_topics.h"
#include "eval/alpha_ndcg.h"
#include "eval/diversity_evaluator.h"
#include "eval/ia_precision.h"
#include "eval/ndcg.h"
#include "eval/wilcoxon.h"
#include "util/math_util.h"

namespace optselect {
namespace eval {
namespace {

// Fixture: one topic (id 1) with two subtopics.
//   docs 10, 11 relevant to subtopic 0;
//   doc  20    relevant to subtopic 1;
//   doc  30    relevant to both.
class DiversityMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    qrels_.Add(1, 0, 10, 1);
    qrels_.Add(1, 0, 11, 1);
    qrels_.Add(1, 1, 20, 1);
    qrels_.Add(1, 0, 30, 1);
    qrels_.Add(1, 1, 30, 1);
  }
  corpus::Qrels qrels_;
};

// ----------------------------------------------------------------- α-NDCG

TEST_F(DiversityMetricsTest, AlphaNdcgPerfectFirstPick) {
  AlphaNdcg metric(&qrels_, 0.5);
  // Doc 30 covers both subtopics: its gain at rank 1 is 2, matching the
  // greedy ideal's first pick, so α-NDCG@1 = 1.
  EXPECT_NEAR(metric.Score(1, 2, {30}, 1), 1.0, 1e-12);
}

TEST_F(DiversityMetricsTest, AlphaNdcgDcgHandComputed) {
  AlphaNdcg metric(&qrels_, 0.5);
  // Ranking {10, 11}: gains 1 and (1-0.5)^1 = 0.5.
  // DCG = 1/log2(2) + 0.5/log2(3).
  double expected = 1.0 + 0.5 / std::log2(3.0);
  EXPECT_NEAR(metric.Dcg(1, 2, {10, 11}, 2), expected, 1e-12);
}

TEST_F(DiversityMetricsTest, AlphaNdcgRewardsDiverseOrdering) {
  AlphaNdcg metric(&qrels_, 0.5);
  // {10, 20} covers both subtopics; {10, 11} repeats subtopic 0.
  double diverse = metric.Score(1, 2, {10, 20}, 2);
  double redundant = metric.Score(1, 2, {10, 11}, 2);
  EXPECT_GT(diverse, redundant);
}

TEST_F(DiversityMetricsTest, AlphaZeroIgnoresRedundancy) {
  AlphaNdcg metric(&qrels_, 0.0);
  double diverse = metric.Dcg(1, 2, {10, 20}, 2);
  double redundant = metric.Dcg(1, 2, {10, 11}, 2);
  EXPECT_NEAR(diverse, redundant, 1e-12);
}

TEST_F(DiversityMetricsTest, AlphaNdcgBounds) {
  AlphaNdcg metric(&qrels_, 0.5);
  for (const std::vector<DocId>& ranking :
       {std::vector<DocId>{10, 11, 20, 30}, std::vector<DocId>{99, 98},
        std::vector<DocId>{30, 20, 10, 11}}) {
    double v = metric.Score(1, 2, ranking, 4);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_F(DiversityMetricsTest, AlphaNdcgIrrelevantRankingIsZero) {
  AlphaNdcg metric(&qrels_, 0.5);
  EXPECT_DOUBLE_EQ(metric.Score(1, 2, {99, 98, 97}, 3), 0.0);
}

TEST_F(DiversityMetricsTest, AlphaNdcgUnjudgedTopicIsZero) {
  AlphaNdcg metric(&qrels_, 0.5);
  EXPECT_DOUBLE_EQ(metric.Score(42, 3, {10, 11}, 2), 0.0);
}

TEST_F(DiversityMetricsTest, IdealDcgGreedyPicksCoverageFirst) {
  AlphaNdcg metric(&qrels_, 0.5);
  // Greedy ideal first pick is doc 30 (gain 2); second-best adds the
  // best remaining gain 1·(0.5)^1 + ... — verify the ideal at depth 1.
  EXPECT_NEAR(metric.IdealDcg(1, 2, 1), 2.0, 1e-12);
}

// Property sweep: α-NDCG bounds and monotone redundancy penalty across
// the α range.
class AlphaSweepTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.99));

TEST_P(AlphaSweepTest, ScoreBoundedAndIdealIsOne) {
  corpus::Qrels qrels;
  qrels.Add(1, 0, 10, 1);
  qrels.Add(1, 0, 11, 1);
  qrels.Add(1, 1, 20, 1);
  AlphaNdcg metric(&qrels, GetParam());
  for (const std::vector<DocId>& ranking :
       {std::vector<DocId>{10, 20, 11}, std::vector<DocId>{11, 10, 20},
        std::vector<DocId>{20, 99, 10}}) {
    double v = metric.Score(1, 2, ranking, 3);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  // The greedy-ideal ordering scores 1 against itself at depth 1.
  EXPECT_NEAR(metric.IdealDcg(1, 2, 1),
              metric.Dcg(1, 2, {10}, 1) > metric.Dcg(1, 2, {20}, 1)
                  ? metric.Dcg(1, 2, {10}, 1)
                  : metric.Dcg(1, 2, {20}, 1),
              1e-9);
}

TEST_P(AlphaSweepTest, LargerAlphaPenalizesRedundancyMore) {
  corpus::Qrels qrels;
  qrels.Add(1, 0, 10, 1);
  qrels.Add(1, 0, 11, 1);
  qrels.Add(1, 1, 20, 1);
  AlphaNdcg metric(&qrels, GetParam());
  // Redundant ranking's *gain* at rank 2 is (1-α)^1; with larger α the
  // redundant DCG falls relative to the diverse one.
  double redundant = metric.Dcg(1, 2, {10, 11}, 2);
  double diverse = metric.Dcg(1, 2, {10, 20}, 2);
  EXPECT_NEAR(diverse - redundant,
              GetParam() / std::log2(3.0), 1e-12);
}

// -------------------------------------------------------------------- IA-P

TEST_F(DiversityMetricsTest, IaPrecisionHandComputed) {
  IntentAwarePrecision metric(&qrels_);
  // top-2 = {10, 20}: subtopic 0 precision 1/2, subtopic 1 precision 1/2.
  EXPECT_NEAR(metric.ScoreUniform(1, 2, {10, 20}, 2), 0.5, 1e-12);
  // top-2 = {10, 11}: subtopic 0 precision 1, subtopic 1 precision 0.
  EXPECT_NEAR(metric.ScoreUniform(1, 2, {10, 11}, 2), 0.5, 1e-12);
  // Doc relevant to both subtopics counts for each.
  EXPECT_NEAR(metric.ScoreUniform(1, 2, {30}, 1), 1.0, 1e-12);
}

TEST_F(DiversityMetricsTest, IaPrecisionWeighted) {
  IntentAwarePrecision metric(&qrels_);
  // Weights 0.8/0.2; top-1 = {20} hits only subtopic 1.
  EXPECT_NEAR(metric.Score(1, {0.8, 0.2}, {20}, 1), 0.2, 1e-12);
  EXPECT_NEAR(metric.Score(1, {0.8, 0.2}, {10}, 1), 0.8, 1e-12);
}

TEST_F(DiversityMetricsTest, IaPrecisionDeepCutoffDividesByK) {
  IntentAwarePrecision metric(&qrels_);
  // k=10 with only one relevant hit for each subtopic in the ranking.
  EXPECT_NEAR(metric.ScoreUniform(1, 2, {10, 20}, 10),
              0.5 * (1.0 / 10.0) + 0.5 * (1.0 / 10.0), 1e-12);
}

TEST_F(DiversityMetricsTest, IaPrecisionEdgeCases) {
  IntentAwarePrecision metric(&qrels_);
  EXPECT_DOUBLE_EQ(metric.ScoreUniform(1, 0, {10}, 5), 0.0);
  EXPECT_DOUBLE_EQ(metric.ScoreUniform(1, 2, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(metric.ScoreUniform(1, 2, {10}, 0), 0.0);
}

// -------------------------------------------------------------------- NDCG

TEST(NdcgTest, PerfectRankingScoresOne) {
  std::vector<int> pool{2, 1, 1, 0};
  EXPECT_NEAR(Ndcg::Score({2, 1, 1}, pool, 3), 1.0, 1e-12);
}

TEST(NdcgTest, ReversedRankingScoresBelowOne) {
  std::vector<int> pool{2, 1, 0};
  double v = Ndcg::Score({0, 1, 2}, pool, 3);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(NdcgTest, DcgHandComputed) {
  // grades {2, 1}: (2^2-1)/log2(2) + (2^1-1)/log2(3) = 3 + 1/log2(3).
  EXPECT_NEAR(Ndcg::Dcg({2, 1}, 2), 3.0 + 1.0 / std::log2(3.0), 1e-12);
}

TEST(NdcgTest, NoRelevantPoolIsZero) {
  EXPECT_DOUBLE_EQ(Ndcg::Score({0, 0}, {0, 0}, 2), 0.0);
}

// ---------------------------------------------------------------- Wilcoxon

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  std::vector<double> x{1, 2, 3, 4, 5};
  WilcoxonResult r = WilcoxonSignedRank(x, x);
  EXPECT_EQ(r.n, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.Significant());
}

TEST(WilcoxonTest, RankSumsPartitionTotal) {
  std::vector<double> x{1.0, 5.0, 3.0, 8.0, 2.0, 9.0};
  std::vector<double> y{2.0, 3.0, 4.0, 4.0, 1.0, 9.5};
  WilcoxonResult r = WilcoxonSignedRank(x, y);
  double total = static_cast<double>(r.n) * (r.n + 1) / 2.0;
  EXPECT_NEAR(r.w_plus + r.w_minus, total, 1e-9);
}

TEST(WilcoxonTest, StrongConsistentShiftIsSignificant) {
  // 10 pairs, all differences positive and distinct: the exact two-sided
  // p-value is 2/2^10 ≈ 0.002.
  std::vector<double> x, y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i + 10.0 + 0.1 * i);
    y.push_back(static_cast<double>(i));
  }
  WilcoxonResult r = WilcoxonSignedRank(x, y);
  EXPECT_EQ(r.n, 10u);
  EXPECT_NEAR(r.p_value, 2.0 / 1024.0, 1e-9);
  EXPECT_TRUE(r.Significant(0.05));
}

TEST(WilcoxonTest, TinySampleNeverSignificant) {
  // n = 3: the smallest attainable two-sided exact p is 0.25.
  std::vector<double> x{2, 3, 4};
  std::vector<double> y{1, 1, 1};
  WilcoxonResult r = WilcoxonSignedRank(x, y);
  EXPECT_GE(r.p_value, 0.25 - 1e-12);
  EXPECT_FALSE(r.Significant(0.05));
}

TEST(WilcoxonTest, MixedNoisyDifferencesNotSignificant) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> y{1.5, 1.5, 3.5, 3.5, 5.5, 5.5};
  WilcoxonResult r = WilcoxonSignedRank(x, y);
  EXPECT_FALSE(r.Significant(0.05));
}

TEST(WilcoxonTest, LargeSampleNormalApproximation) {
  // 60 pairs with alternating small ± differences: p must be large.
  std::vector<double> x, y;
  for (int i = 0; i < 60; ++i) {
    x.push_back(i);
    y.push_back(i + ((i % 2 == 0) ? 0.5 : -0.5) * (1 + i % 3));
  }
  WilcoxonResult r = WilcoxonSignedRank(x, y);
  EXPECT_GT(r.p_value, 0.05);

  // 60 pairs, all shifted by +1 (plus distinct noise): p must be tiny.
  std::vector<double> x2, y2;
  for (int i = 0; i < 60; ++i) {
    x2.push_back(i + 1.0 + 0.001 * i);
    y2.push_back(i);
  }
  WilcoxonResult r2 = WilcoxonSignedRank(x2, y2);
  EXPECT_LT(r2.p_value, 0.001);
}

// ---------------------------------------------------- DiversityEvaluator

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::TrecTopic t1;
    t1.id = 1;
    t1.query = "alpha";
    t1.subtopics.resize(2);
    t1.subtopics[0].probability = 0.7;
    t1.subtopics[1].probability = 0.3;
    topics_.Add(t1);
    corpus::TrecTopic t2;
    t2.id = 2;
    t2.query = "beta";
    t2.subtopics.resize(1);
    t2.subtopics[0].probability = 1.0;
    topics_.Add(t2);

    qrels_.Add(1, 0, 10, 1);
    qrels_.Add(1, 1, 20, 1);
    qrels_.Add(2, 0, 30, 1);
  }

  corpus::TopicSet topics_;
  corpus::Qrels qrels_;
};

TEST_F(EvaluatorTest, PerfectRunScoresOneAtCutoff) {
  DiversityEvaluator::Options opt;
  opt.cutoffs = {2};
  DiversityEvaluator evaluator(&topics_, &qrels_, opt);
  ::optselect::eval::Run run;
  run.name = "perfect";
  run.rankings[1] = {10, 20};
  run.rankings[2] = {30};
  MetricRow row = evaluator.Evaluate(run);
  EXPECT_NEAR(row.alpha_ndcg[2], 1.0, 1e-12);
}

TEST_F(EvaluatorTest, MissingTopicScoresZero) {
  DiversityEvaluator::Options opt;
  opt.cutoffs = {2};
  DiversityEvaluator evaluator(&topics_, &qrels_, opt);
  ::optselect::eval::Run run;
  run.name = "half";
  run.rankings[1] = {10, 20};  // topic 2 missing
  MetricRow row = evaluator.Evaluate(run);
  EXPECT_NEAR(row.alpha_ndcg[2], 0.5, 1e-12);
  auto per_topic = evaluator.PerTopicAlphaNdcg(run, 2);
  ASSERT_EQ(per_topic.size(), 2u);
  EXPECT_NEAR(per_topic[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(per_topic[1], 0.0);
}

TEST_F(EvaluatorTest, WeightedIntentOptionChangesIaP) {
  DiversityEvaluator::Options uniform;
  uniform.cutoffs = {1};
  uniform.uniform_intent_weights = true;
  DiversityEvaluator ev_u(&topics_, &qrels_, uniform);

  DiversityEvaluator::Options weighted = uniform;
  weighted.uniform_intent_weights = false;
  DiversityEvaluator ev_w(&topics_, &qrels_, weighted);

  ::optselect::eval::Run run;
  run.name = "top1";
  run.rankings[1] = {10};  // hits the 0.7-probability subtopic
  run.rankings[2] = {30};

  double u = ev_u.Evaluate(run).ia_precision[1];   // (0.5 + 1) / 2
  double w = ev_w.Evaluate(run).ia_precision[1];   // (0.7 + 1) / 2
  EXPECT_NEAR(u, 0.75, 1e-12);
  EXPECT_NEAR(w, 0.85, 1e-12);
}

}  // namespace
}  // namespace eval
}  // namespace optselect
