// Unified Frontend API tests: every serving tier (single node, sharded
// cluster) answers through the same Submit(Request) -> Response
// contract, bit-identically; the deprecated Serve/Submit(string, cb)
// shims forward to the canonical calls; the default SubmitAsync
// adapter runs the blocking Submit inline exactly once; and the
// Frontend* replay overload drives any implementation. The
// remote-vs-local half of the contract lives in net_test.cc.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/sharded_cluster.h"
#include "pipeline/testbed.h"
#include "serving/frontend.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/hash.h"

namespace optselect {
namespace serving {
namespace {

uint64_t RankHash(const std::vector<DocId>& ranking) {
  return util::Fnv1a64(ranking.data(), ranking.size() * sizeof(DocId));
}

class FrontendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static ServingConfig NodeConfig() {
    ServingConfig config;
    config.num_workers = 1;
    config.queue_capacity = 256;
    config.params.diversify.k = 10;
    return config;
  }

  static std::vector<std::string> Mix() {
    std::vector<std::string> mix;
    for (const auto& [key, entry] : store_->entries()) mix.push_back(key);
    std::sort(mix.begin(), mix.end());
    mix.push_back(testbed_->universe().noise_queries[0]);
    return mix;
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
};

pipeline::Testbed* FrontendTest::testbed_ = nullptr;
store::DiversificationStore* FrontendTest::store_ = nullptr;

TEST_F(FrontendTest, NodeAndClusterAnswerIdenticallyThroughTheInterface) {
  ServingNode node(store_, testbed_, NodeConfig());
  cluster::ClusterConfig cc;
  cc.num_shards = 2;
  cc.replicate_hot = 0;
  cc.node = NodeConfig();
  cluster::ShardedCluster cluster(*store_, testbed_, nullptr, cc);

  // Callers hold only the interface — the tiers are interchangeable.
  Frontend* tiers[] = {&node, &cluster};
  for (const std::string& query : Mix()) {
    Response reference = tiers[0]->Submit(Request(query));
    ASSERT_TRUE(reference.ok) << query;
    Response other = tiers[1]->Submit(Request(query));
    ASSERT_TRUE(other.ok) << query;
    EXPECT_EQ(RankHash(reference.ranking), RankHash(other.ranking)) << query;
    EXPECT_EQ(reference.diversified, other.diversified);
    EXPECT_EQ(reference.num_specializations, other.num_specializations);
    EXPECT_FALSE(other.degraded);
  }
  node.Shutdown();
}

TEST_F(FrontendTest, DeprecatedShimsForwardToCanonicalCalls) {
  ServingConfig config = NodeConfig();
  config.enable_cache = false;  // each call recomputes: a real comparison
  ServingNode node(store_, testbed_, config);
  for (const std::string& query : Mix()) {
    Response canonical = node.Submit(Request(query));
    ServeResult shim = node.Serve(query);  // deprecated alias + shim
    ASSERT_TRUE(canonical.ok);
    ASSERT_TRUE(shim.ok);
    EXPECT_EQ(canonical.ranking, shim.ranking);
    EXPECT_EQ(canonical.diversified, shim.diversified);

    std::atomic<bool> fired{false};
    Response via_callback;
    std::mutex mu;
    std::condition_variable cv;
    ASSERT_TRUE(node.Submit(query, [&](ServeResult result) {
      std::lock_guard<std::mutex> lock(mu);
      via_callback = std::move(result);
      fired.store(true);
      cv.notify_one();
    }));
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fired.load(); });
    EXPECT_EQ(canonical.ranking, via_callback.ranking);
  }
  node.Shutdown();
}

// A minimal Frontend that implements only the blocking call: the
// default SubmitAsync adapter must run it inline, invoke the callback
// exactly once, and report acceptance.
class BlockingOnlyFrontend : public Frontend {
 public:
  Response Submit(const Request& request) override {
    ++calls;
    Response response;
    response.ok = true;
    response.ranking = {static_cast<DocId>(request.query.size()), 7u};
    return response;
  }
  int calls = 0;
};

TEST(FrontendDefaultAdapterTest, SubmitAsyncRunsBlockingSubmitInline) {
  BlockingOnlyFrontend frontend;
  int callbacks = 0;
  Response seen;
  bool accepted = frontend.SubmitAsync(Request("abcd"), [&](Response r) {
    ++callbacks;
    seen = std::move(r);
  });
  EXPECT_TRUE(accepted);
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(frontend.calls, 1);
  ASSERT_TRUE(seen.ok);
  EXPECT_EQ(seen.ranking, (std::vector<DocId>{4u, 7u}));
}

TEST_F(FrontendTest, ReplayMixDrivesAnyFrontend) {
  ServingNode node(store_, testbed_, NodeConfig());
  cluster::ClusterConfig cc;
  cc.num_shards = 2;
  cc.node = NodeConfig();
  cluster::ShardedCluster cluster(*store_, testbed_, nullptr, cc);

  std::vector<std::string> mix = Mix();
  for (Frontend* frontend :
       {static_cast<Frontend*>(&node), static_cast<Frontend*>(&cluster)}) {
    ReplayOutcome outcome = ReplayMix(frontend, mix);
    EXPECT_EQ(outcome.accepted, mix.size());
  }
  node.Shutdown();
}

}  // namespace
}  // namespace serving
}  // namespace optselect
