// Unit tests for the querylog module: log container + TSV round trip,
// synthetic generation, query-flow graph, session segmentation, Zipf
// replay mixes, and incremental log-tail ingestion.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "querylog/log_ingestor.h"
#include "querylog/popularity.h"
#include "querylog/query_flow_graph.h"
#include "querylog/query_log.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "synth/topic_universe.h"
#include "util/rng.h"

namespace optselect {
namespace querylog {
namespace {

QueryRecord MakeRecord(const std::string& q, UserId user, int64_t ts,
                       std::vector<DocUrlId> results = {},
                       std::vector<DocUrlId> clicks = {}) {
  QueryRecord r;
  r.query = q;
  r.user = user;
  r.timestamp = ts;
  r.results = std::move(results);
  r.clicks = std::move(clicks);
  return r;
}

// ---------------------------------------------------------------- QueryLog

TEST(QueryLogTest, AddAndAccess) {
  QueryLog log;
  log.Add(MakeRecord("apple", 1, 100));
  log.Add(MakeRecord("apple ipod", 1, 130));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.record(0).query, "apple");
  EXPECT_EQ(log.record(1).timestamp, 130);
}

TEST(QueryLogTest, UserStreamsSortedByTime) {
  QueryLog log;
  log.Add(MakeRecord("c", 2, 300));
  log.Add(MakeRecord("a", 1, 200));
  log.Add(MakeRecord("b", 1, 100));
  auto streams = log.UserStreams();
  ASSERT_EQ(streams.size(), 2u);
  // User 1 stream is time-ordered: "b" then "a".
  EXPECT_EQ(log.record(streams[0][0]).query, "b");
  EXPECT_EQ(log.record(streams[0][1]).query, "a");
  EXPECT_EQ(log.record(streams[1][0]).query, "c");
}

TEST(QueryLogTest, TsvRoundTrip) {
  QueryLog log;
  log.Add(MakeRecord("leopard", 7, 1000, {1, 2, 3}, {2}));
  log.Add(MakeRecord("leopard tank", 7, 1060, {4, 5}, {}));
  std::string path = ::testing::TempDir() + "/qlog_roundtrip.tsv";
  ASSERT_TRUE(log.SaveTsv(path).ok());

  auto loaded = QueryLog::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QueryLog& l = loaded.value();
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.record(0).query, "leopard");
  EXPECT_EQ(l.record(0).user, 7u);
  EXPECT_EQ(l.record(0).results, (std::vector<DocUrlId>{1, 2, 3}));
  EXPECT_EQ(l.record(0).clicks, (std::vector<DocUrlId>{2}));
  EXPECT_EQ(l.record(1).results, (std::vector<DocUrlId>{4, 5}));
  EXPECT_TRUE(l.record(1).clicks.empty());
  std::remove(path.c_str());
}

TEST(QueryLogTest, LoadMissingFileFails) {
  auto r = QueryLog::LoadTsv("/nonexistent/path/x.tsv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST(QueryLogTest, LoadCorruptLineFails) {
  std::string path = ::testing::TempDir() + "/qlog_corrupt.tsv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("only\ttwo\n", f);
  fclose(f);
  auto r = QueryLog::LoadTsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(QueryLogTest, SplitChronologicalFraction) {
  QueryLog log;
  for (int i = 0; i < 10; ++i) {
    log.Add(MakeRecord("q" + std::to_string(i), 1, 100 * i));
  }
  QueryLog train, test;
  log.SplitChronological(0.7, &train, &test);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  // Every train timestamp precedes every test timestamp.
  int64_t max_train = 0;
  for (const auto& r : train.records()) {
    max_train = std::max(max_train, r.timestamp);
  }
  for (const auto& r : test.records()) EXPECT_GT(r.timestamp, max_train);
}

// -------------------------------------------------------------- Popularity

TEST(PopularityTest, CountsFrequencies) {
  QueryLog log;
  log.Add(MakeRecord("a", 1, 1));
  log.Add(MakeRecord("a", 2, 2));
  log.Add(MakeRecord("b", 1, 3));
  PopularityMap pop(log);
  EXPECT_EQ(pop.Frequency("a"), 2u);
  EXPECT_EQ(pop.Frequency("b"), 1u);
  EXPECT_EQ(pop.Frequency("zzz"), 0u);
  EXPECT_EQ(pop.distinct(), 2u);
  EXPECT_EQ(pop.total(), 3u);
}

// ------------------------------------------------------------ ZipfQueryMix

class ZipfQueryMixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Strictly decreasing frequencies: rank order is unambiguous.
    pop_.Increment("head", 100);
    pop_.Increment("middle", 50);
    pop_.Increment("tail-a", 10);
    pop_.Increment("tail-b", 10);  // frequency tie with tail-a
    pop_.Increment("rare", 1);
  }
  PopularityMap pop_;
};

TEST_F(ZipfQueryMixTest, DeterministicForSeed) {
  util::Rng rng_a(42), rng_b(42), rng_c(43);
  std::vector<std::string> a = ZipfQueryMix(pop_, 500, 1.0, &rng_a);
  std::vector<std::string> b = ZipfQueryMix(pop_, 500, 1.0, &rng_b);
  std::vector<std::string> c = ZipfQueryMix(pop_, 500, 1.0, &rng_c);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b) << "same seed must replay the identical mix";
  EXPECT_NE(a, c) << "different seeds should diverge";
}

TEST_F(ZipfQueryMixTest, DrawsOnlyKnownQueriesAndRespectsCount) {
  util::Rng rng(7);
  std::vector<std::string> mix = ZipfQueryMix(pop_, 200, 1.0, &rng);
  EXPECT_EQ(mix.size(), 200u);
  for (const std::string& q : mix) {
    EXPECT_GT(pop_.Frequency(q), 0u) << "unknown query in mix: " << q;
  }
  EXPECT_TRUE(ZipfQueryMix(pop_, 0, 1.0, &rng).empty());
}

TEST_F(ZipfQueryMixTest, SkewBoundsHeadShare) {
  // Higher skew concentrates mass on rank 0 ("head"); near-zero skew
  // approaches uniform. With skew 2 the head must dominate every other
  // query; with skew 0 its share must stay near 1/5.
  util::Rng rng(11);
  constexpr size_t kN = 4000;
  auto head_share = [&](double skew) {
    std::vector<std::string> mix = ZipfQueryMix(pop_, kN, skew, &rng);
    size_t head = 0;
    for (const std::string& q : mix) head += q == "head" ? 1 : 0;
    return static_cast<double>(head) / kN;
  };
  double uniform = head_share(0.0);
  double skewed = head_share(2.0);
  EXPECT_NEAR(uniform, 0.2, 0.05);
  EXPECT_GT(skewed, 0.55);  // 1/zeta(2,5 ranks) ≈ 0.68
  EXPECT_GT(skewed, uniform);
}

TEST_F(ZipfQueryMixTest, FrequencyTiesBreakLexicographically) {
  // "tail-a" < "tail-b" with equal frequency ⇒ tail-a gets the better
  // (lower) rank, so at positive skew it must appear at least as often.
  util::Rng rng(5);
  std::vector<std::string> mix = ZipfQueryMix(pop_, 4000, 1.5, &rng);
  size_t a = 0, b = 0;
  for (const std::string& q : mix) {
    a += q == "tail-a" ? 1 : 0;
    b += q == "tail-b" ? 1 : 0;
  }
  EXPECT_GE(a, b);
}

// ------------------------------------------------------------- LogIngestor

class LogIngestorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ingest_tail.tsv";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void Append(const std::string& chunk) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << chunk;
  }

  std::string path_;
};

TEST_F(LogIngestorTest, PollsOnlyNewCompleteLines) {
  Append("apple\t1\t100\t1,2\t1\n");
  LogIngestor ingestor(path_);

  auto first = ingestor.Poll();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().log.size(), 1u);
  EXPECT_EQ(first.value().dirty_queries,
            (std::vector<std::string>{"apple"}));

  // Nothing new ⇒ empty delta, not an error.
  auto idle = ingestor.Poll();
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle.value().empty());

  // A complete line plus a partial line: only the complete one is
  // consumed; the partial stays for the next poll.
  Append("jaguar\t2\t200\t3\t\njaguar ca");
  auto second = ingestor.Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().log.size(), 1u);
  EXPECT_EQ(second.value().log.record(0).query, "jaguar");

  Append("r\t2\t230\t4\t4\n");
  auto third = ingestor.Poll();
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third.value().log.size(), 1u);
  EXPECT_EQ(third.value().log.record(0).query, "jaguar car");
  EXPECT_EQ(third.value().log.record(0).clicks,
            (std::vector<DocUrlId>{4}));
  EXPECT_EQ(ingestor.records_ingested(), 3u);
}

TEST_F(LogIngestorTest, PopularityMatchesBatchConstruction) {
  Append("apple\t1\t100\t1\t\n");
  Append("apple\t2\t110\t1\t\n");
  Append("jaguar\t1\t120\t2\t\n");
  LogIngestor ingestor(path_);
  ASSERT_TRUE(ingestor.Poll().ok());
  Append("apple\t3\t130\t1\t\n");
  ASSERT_TRUE(ingestor.Poll().ok());

  auto full = QueryLog::LoadTsv(path_);
  ASSERT_TRUE(full.ok());
  PopularityMap batch(full.value());
  EXPECT_EQ(ingestor.popularity().Frequency("apple"),
            batch.Frequency("apple"));
  EXPECT_EQ(ingestor.popularity().Frequency("jaguar"),
            batch.Frequency("jaguar"));
  EXPECT_EQ(ingestor.popularity().total(), batch.total());
}

TEST_F(LogIngestorTest, MalformedLinesSkippedNotFatal) {
  Append("good\t1\t100\t1\t\nonly\ttwo\nalso good\t2\t110\t2\t\n");
  LogIngestor ingestor(path_);
  auto polled = ingestor.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value().log.size(), 2u);
  EXPECT_EQ(polled.value().malformed_lines, 1u);
  EXPECT_EQ(ingestor.malformed_lines(), 1u);
}

TEST_F(LogIngestorTest, SkipToEndIgnoresExistingRecords) {
  Append("old\t1\t100\t1\t\n");
  LogIngestor ingestor(path_);
  ASSERT_TRUE(ingestor.SkipToEnd().ok());
  Append("new\t2\t200\t2\t\n");
  auto polled = ingestor.Poll();
  ASSERT_TRUE(polled.ok());
  ASSERT_EQ(polled.value().log.size(), 1u);
  EXPECT_EQ(polled.value().log.record(0).query, "new");
  EXPECT_EQ(ingestor.popularity().Frequency("old"), 0u);
}

TEST_F(LogIngestorTest, MissingFileIsIoError) {
  LogIngestor ingestor("/nonexistent/dir/tail.tsv");
  auto polled = ingestor.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), util::StatusCode::kIoError);
}

// ------------------------------------------------------------ SyntheticLog

class SyntheticLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::TopicUniverseConfig ucfg;
    ucfg.num_topics = 6;
    universe_ = synth::GenerateTopicUniverse(ucfg, 50);
    SyntheticLogConfig cfg;
    cfg.num_users = 100;
    cfg.num_sessions = 4000;
    SyntheticLogGenerator gen(cfg);
    result_ = gen.Generate(universe_.topics, universe_.noise_queries);
  }

  synth::TopicUniverse universe_;
  SyntheticLogResult result_;
};

TEST_F(SyntheticLogTest, EmitsRecords) {
  EXPECT_GT(result_.log.size(), 4000u * 0.9);
  EXPECT_EQ(result_.record_topic.size(), result_.log.size());
}

TEST_F(SyntheticLogTest, DeterministicForSeed) {
  SyntheticLogConfig cfg;
  cfg.num_users = 100;
  cfg.num_sessions = 4000;
  SyntheticLogGenerator gen(cfg);
  SyntheticLogResult again =
      gen.Generate(universe_.topics, universe_.noise_queries);
  ASSERT_EQ(again.log.size(), result_.log.size());
  for (size_t i = 0; i < again.log.size(); ++i) {
    EXPECT_EQ(again.log.record(i).query, result_.log.record(i).query);
    EXPECT_EQ(again.log.record(i).timestamp,
              result_.log.record(i).timestamp);
  }
}

TEST_F(SyntheticLogTest, RootQueriesAppear) {
  PopularityMap pop(result_.log);
  for (const synth::TopicSpec& t : universe_.topics) {
    EXPECT_GT(pop.Frequency(t.root_query), 0u)
        << "missing root " << t.root_query;
  }
}

TEST_F(SyntheticLogTest, SpecializationFrequenciesTrackProbabilities) {
  PopularityMap pop(result_.log);
  // For the most popular topic, the most probable specialization must be
  // observed at least as often as the least probable one.
  const synth::TopicSpec& t = universe_.topics[0];
  uint64_t first = pop.Frequency(t.intents.front().query);
  uint64_t last = pop.Frequency(t.intents.back().query);
  EXPECT_GE(first, last);
}

TEST_F(SyntheticLogTest, RefinementEventsCounted) {
  EXPECT_GT(result_.refinement_events, 0u);
  EXPECT_LT(result_.refinement_events, result_.log.size());
}

TEST_F(SyntheticLogTest, ResultsAndClicksWellFormed) {
  for (const QueryRecord& r : result_.log.records()) {
    EXPECT_EQ(r.results.size(), 10u);
    std::set<DocUrlId> rs(r.results.begin(), r.results.end());
    for (DocUrlId c : r.clicks) {
      EXPECT_TRUE(rs.count(c)) << "click outside result set";
    }
  }
}

TEST_F(SyntheticLogTest, PresetsDiffer) {
  SyntheticLogConfig aol = AolLikeConfig();
  SyntheticLogConfig msn = MsnLikeConfig();
  EXPECT_NE(aol.start_timestamp, msn.start_timestamp);
  EXPECT_NE(aol.refinement_probability, msn.refinement_probability);
}

// ---------------------------------------------------------- QueryFlowGraph

class FlowGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two users, clear refinement chains.
    log_.Add(MakeRecord("leopard", 1, 100));
    log_.Add(MakeRecord("leopard tank", 1, 160));
    log_.Add(MakeRecord("leopard", 2, 500));
    log_.Add(MakeRecord("leopard tank", 2, 560));
    log_.Add(MakeRecord("leopard", 3, 900));
    log_.Add(MakeRecord("leopard pictures", 3, 930));
    // A gap larger than the window: no edge.
    log_.Add(MakeRecord("walnut", 4, 1000));
    log_.Add(MakeRecord("leopard", 4, 1000 + 7200));
    graph_ = QueryFlowGraph::Build(log_, QueryFlowGraph::Options{});
  }

  QueryLog log_;
  QueryFlowGraph graph_;
};

TEST_F(FlowGraphTest, NodesForAllQueries) {
  EXPECT_NE(graph_.NodeOf("leopard"), kInvalidQueryNode);
  EXPECT_NE(graph_.NodeOf("leopard tank"), kInvalidQueryNode);
  EXPECT_NE(graph_.NodeOf("walnut"), kInvalidQueryNode);
  EXPECT_EQ(graph_.NodeOf("ghost"), kInvalidQueryNode);
}

TEST_F(FlowGraphTest, ObservedTransitionHasPositiveProbability) {
  EXPECT_GT(graph_.ChainingProbability("leopard", "leopard tank"), 0.0);
  EXPECT_GT(graph_.ChainingProbability("leopard", "leopard pictures"), 0.0);
}

TEST_F(FlowGraphTest, FrequentTransitionBeatsRareOne) {
  // "leopard → leopard tank" seen twice, "→ leopard pictures" once.
  EXPECT_GT(graph_.ChainingProbability("leopard", "leopard tank"),
            graph_.ChainingProbability("leopard", "leopard pictures"));
}

TEST_F(FlowGraphTest, NoEdgeAcrossLongGap) {
  EXPECT_DOUBLE_EQ(graph_.ChainingProbability("walnut", "leopard"), 0.0);
}

TEST_F(FlowGraphTest, UnknownQueriesHaveZeroProbability) {
  EXPECT_DOUBLE_EQ(graph_.ChainingProbability("ghost", "leopard"), 0.0);
  EXPECT_DOUBLE_EQ(graph_.ChainingProbability("leopard", "ghost"), 0.0);
}

TEST_F(FlowGraphTest, TerminationProbabilityBounds) {
  // "leopard tank" always ends its stream → termination 1.
  EXPECT_DOUBLE_EQ(graph_.TerminationProbability("leopard tank"), 1.0);
  // Unknown queries terminate trivially.
  EXPECT_DOUBLE_EQ(graph_.TerminationProbability("ghost"), 1.0);
  double t = graph_.TerminationProbability("leopard");
  EXPECT_GE(t, 0.0);
  EXPECT_LE(t, 1.0);
}

TEST_F(FlowGraphTest, LexicalAffinityJaccard) {
  EXPECT_DOUBLE_EQ(QueryFlowGraph::LexicalAffinity("a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(QueryFlowGraph::LexicalAffinity("a", "b"), 0.0);
  EXPECT_NEAR(QueryFlowGraph::LexicalAffinity("leopard", "leopard tank"),
              0.5, 1e-12);
  EXPECT_DOUBLE_EQ(QueryFlowGraph::LexicalAffinity("", "x"), 0.0);
}

TEST_F(FlowGraphTest, EdgeCountsAggregated) {
  QueryNodeId u = graph_.NodeOf("leopard");
  ASSERT_NE(u, kInvalidQueryNode);
  uint32_t tank_count = 0;
  for (const auto& e : graph_.OutEdges(u)) {
    if (graph_.QueryOf(e.to) == "leopard tank") tank_count = e.count;
  }
  EXPECT_EQ(tank_count, 2u);
}

// -------------------------------------------------------- SessionSegmenter

TEST(SessionSegmenterTest, TimeGapSplits) {
  QueryLog log;
  log.Add(MakeRecord("a", 1, 0));
  log.Add(MakeRecord("b", 1, 100));
  log.Add(MakeRecord("c", 1, 100 + 4000));  // > 1800s gap
  SessionSegmenter seg;
  auto sessions = seg.Segment(log, nullptr);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].record_indices.size(), 2u);
  EXPECT_EQ(sessions[1].record_indices.size(), 1u);
}

TEST(SessionSegmenterTest, QfgCutsUnrelatedTransition) {
  QueryLog log;
  // Build a log where "apple → walnut" is a one-off unrelated jump while
  // "apple → apple pie" is frequent.
  for (UserId u = 1; u <= 20; ++u) {
    log.Add(MakeRecord("apple", u, 100 * u));
    log.Add(MakeRecord("apple pie", u, 100 * u + 30));
  }
  log.Add(MakeRecord("apple", 99, 50000));
  log.Add(MakeRecord("walnut", 99, 50030));

  QueryFlowGraph graph = QueryFlowGraph::Build(log, {});
  SessionSegmenter::Options opt;
  opt.min_chain_probability = 0.05;
  SessionSegmenter seg(opt);
  auto sessions = seg.Segment(log, &graph);

  // User 99's stream must be split (apple | walnut), users 1..20 not.
  size_t user99_sessions = 0;
  for (const Session& s : sessions) {
    if (s.user == 99) ++user99_sessions;
    if (s.user >= 1 && s.user <= 20) {
      EXPECT_EQ(s.record_indices.size(), 2u);
    }
  }
  EXPECT_EQ(user99_sessions, 2u);
}

TEST(SessionSegmenterTest, SessionsPartitionTheLog) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 4;
  auto universe = synth::GenerateTopicUniverse(ucfg, 30);
  SyntheticLogConfig cfg;
  cfg.num_users = 50;
  cfg.num_sessions = 1000;
  auto result =
      SyntheticLogGenerator(cfg).Generate(universe.topics,
                                          universe.noise_queries);
  QueryFlowGraph graph = QueryFlowGraph::Build(result.log, {});
  auto sessions = SessionSegmenter().Segment(result.log, &graph);

  std::set<size_t> covered;
  for (const Session& s : sessions) {
    EXPECT_FALSE(s.record_indices.empty());
    for (size_t idx : s.record_indices) {
      EXPECT_TRUE(covered.insert(idx).second) << "index in two sessions";
      EXPECT_EQ(result.log.record(idx).user, s.user);
    }
  }
  EXPECT_EQ(covered.size(), result.log.size());
}

TEST(SessionSegmenterTest, EmptyLog) {
  QueryLog log;
  auto sessions = SessionSegmenter().Segment(log, nullptr);
  EXPECT_TRUE(sessions.empty());
}

}  // namespace
}  // namespace querylog
}  // namespace optselect
