// Network serving edge tests: wire codec round-trips (property-style,
// random frames refed in random chunks), malformed-frame rejection
// (truncated, bad magic/version/type/reserved, checksum flip,
// oversized length), the epoll server against real loopback sockets
// (slow-loris partial writes, garbage streams, admission control and
// load shedding as explicit error frames), and the acceptance-criteria
// bit-identity: a remote fleet of wire-protocol servers returns
// rankings FNV-identical to the in-process node / cluster on the same
// store and query mix.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/sharded_cluster.h"
#include "net/client.h"
#include "net/netpoll.h"
#include "net/server.h"
#include "net/wire.h"
#include "pipeline/testbed.h"
#include "serving/frontend.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"
#include "util/hash.h"

namespace optselect {
namespace net {
namespace {

uint64_t RankHash(const std::vector<DocId>& ranking) {
  return util::Fnv1a64(ranking.data(), ranking.size() * sizeof(DocId));
}

// ------------------------------------------------------------ codec

TEST(WireCodecTest, RequestRoundTrip) {
  serving::Request request("jaguar classic cars", 42);
  std::string bytes = EncodeRequestFrame(request);
  FrameParser parser;
  ASSERT_TRUE(parser.Feed(bytes.data(), bytes.size()));
  ASSERT_TRUE(parser.HasFrame());
  Frame frame = parser.Next();
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.request_id, 42u);
  serving::Request decoded;
  ASSERT_TRUE(DecodeRequestPayload(frame, &decoded));
  EXPECT_EQ(decoded.query, "jaguar classic cars");
  EXPECT_EQ(decoded.id, 42u);
}

TEST(WireCodecTest, ResponseRoundTripPreservesEveryField) {
  serving::Response response;
  response.ok = true;
  response.degraded = true;
  response.hedged = false;
  response.diversified = true;
  response.cache_hit = true;
  response.batch_dedup = false;
  response.plan_served = true;
  response.streaming_served = false;
  response.num_specializations = 7;
  response.store_version = 0xdeadbeefcafeull;
  response.ranking = {3, 1, 4, 1, 5, 9, 2, 6};

  std::string bytes = EncodeResponseFrame(99, response);
  FrameParser parser;
  ASSERT_TRUE(parser.Feed(bytes.data(), bytes.size()));
  ASSERT_TRUE(parser.HasFrame());
  Frame frame = parser.Next();
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 99u);
  serving::Response decoded;
  ASSERT_TRUE(DecodeResponsePayload(frame, &decoded));
  EXPECT_EQ(decoded.ok, response.ok);
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.hedged, response.hedged);
  EXPECT_EQ(decoded.diversified, response.diversified);
  EXPECT_EQ(decoded.cache_hit, response.cache_hit);
  EXPECT_EQ(decoded.batch_dedup, response.batch_dedup);
  EXPECT_EQ(decoded.plan_served, response.plan_served);
  EXPECT_EQ(decoded.streaming_served, response.streaming_served);
  EXPECT_EQ(decoded.num_specializations, response.num_specializations);
  EXPECT_EQ(decoded.store_version, response.store_version);
  EXPECT_EQ(decoded.ranking, response.ranking);
}

TEST(WireCodecTest, ErrorRoundTrip) {
  std::string bytes = EncodeErrorFrame(7, ErrorCode::kShed, "queue full");
  FrameParser parser;
  ASSERT_TRUE(parser.Feed(bytes.data(), bytes.size()));
  ASSERT_TRUE(parser.HasFrame());
  Frame frame = parser.Next();
  EXPECT_EQ(frame.type, FrameType::kError);
  WireError error;
  ASSERT_TRUE(DecodeErrorPayload(frame, &error));
  EXPECT_EQ(error.code, ErrorCode::kShed);
  EXPECT_EQ(error.message, "queue full");
}

// Property-style: random frames, random chunking (1-byte feeds cover
// the slow-loris shape), every frame must come back bit-identical.
TEST(WireCodecTest, RandomFramesSurviveRandomChunking) {
  std::mt19937 rng(20260808);
  std::vector<Frame> sent;
  std::string stream;
  for (int i = 0; i < 100; ++i) {
    Frame frame;
    frame.type = static_cast<FrameType>(1 + rng() % 3);
    frame.flags = static_cast<uint16_t>(rng());
    frame.request_id = (static_cast<uint64_t>(rng()) << 32) | rng();
    size_t payload_len = rng() % 512;
    frame.payload.reserve(payload_len);
    for (size_t b = 0; b < payload_len; ++b) {
      frame.payload.push_back(static_cast<char>(rng() & 0xff));
    }
    stream += EncodeFrame(frame);
    sent.push_back(std::move(frame));
  }

  FrameParser parser;
  std::vector<Frame> received;
  size_t offset = 0;
  while (offset < stream.size()) {
    size_t chunk = 1 + rng() % 97;
    chunk = std::min(chunk, stream.size() - offset);
    ASSERT_TRUE(parser.Feed(stream.data() + offset, chunk));
    offset += chunk;
    while (parser.HasFrame()) received.push_back(parser.Next());
  }
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].type, sent[i].type);
    EXPECT_EQ(received[i].flags, sent[i].flags);
    EXPECT_EQ(received[i].request_id, sent[i].request_id);
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

// ------------------------------------------------------- malformed frames

TEST(WireCodecTest, TruncatedFrameIsNotAFrameYet) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  FrameParser parser;
  // Every strict prefix parses cleanly but yields nothing.
  ASSERT_TRUE(parser.Feed(bytes.data(), bytes.size() - 1));
  EXPECT_FALSE(parser.HasFrame());
  EXPECT_TRUE(parser.error().empty());
  // The last byte completes it.
  ASSERT_TRUE(parser.Feed(bytes.data() + bytes.size() - 1, 1));
  EXPECT_TRUE(parser.HasFrame());
}

TEST(WireCodecTest, BadMagicPoisonsTheStream) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  bytes[0] ^= 0x5a;
  FrameParser parser;
  EXPECT_FALSE(parser.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(parser.error(), "bad magic");
  // Poisoned: even valid bytes are rejected afterwards.
  std::string good = EncodeRequestFrame(serving::Request("pear"));
  EXPECT_FALSE(parser.Feed(good.data(), good.size()));
}

TEST(WireCodecTest, BadVersionRejected) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  bytes[4] = 9;
  FrameParser parser;
  EXPECT_FALSE(parser.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(parser.error(), "unsupported version");
}

TEST(WireCodecTest, UnknownTypeRejected) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  bytes[5] = 0;
  FrameParser parser;
  EXPECT_FALSE(parser.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(parser.error(), "unknown frame type");
}

TEST(WireCodecTest, NonzeroReservedRejected) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  bytes[21] = 1;
  FrameParser parser;
  EXPECT_FALSE(parser.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(parser.error(), "nonzero reserved field");
}

TEST(WireCodecTest, ChecksumFlipRejected) {
  // Flip one payload byte: header checks pass, checksum must not.
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  bytes[kHeaderSize] ^= 0x01;
  FrameParser parser;
  EXPECT_FALSE(parser.Feed(bytes.data(), bytes.size()));
  EXPECT_EQ(parser.error(), "checksum mismatch");
}

TEST(WireCodecTest, OversizedLengthRejectedBeforeBuffering) {
  std::string bytes = EncodeRequestFrame(serving::Request("apple"));
  uint32_t huge = kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  FrameParser parser;
  // Header alone is enough to reject: no waiting for a gigabyte.
  EXPECT_FALSE(parser.Feed(bytes.data(), kHeaderSize));
  EXPECT_EQ(parser.error(), "oversized payload length");
}

TEST(WireCodecTest, MalformedResponsePayloadsRejected) {
  Frame frame;
  frame.type = FrameType::kResponse;
  serving::Response out;
  // Too short for the fixed part.
  frame.payload = std::string(8, '\0');
  EXPECT_FALSE(DecodeResponsePayload(frame, &out));
  // Declared count disagrees with the actual bytes.
  serving::Response r;
  r.ok = true;
  r.ranking = {1, 2, 3};
  std::string encoded = EncodeResponseFrame(1, r);
  FrameParser parser;
  ASSERT_TRUE(parser.Feed(encoded.data(), encoded.size()));
  Frame good = parser.Next();
  good.payload.resize(good.payload.size() - 4);  // drop one doc id
  EXPECT_FALSE(DecodeResponsePayload(good, &out));
}

TEST(WireEndpointTest, ParseEndpointForms) {
  Endpoint endpoint;
  ASSERT_TRUE(ParseEndpoint("10.1.2.3:8080", &endpoint));
  EXPECT_EQ(endpoint.host, "10.1.2.3");
  EXPECT_EQ(endpoint.port, 8080);
  ASSERT_TRUE(ParseEndpoint(":9090", &endpoint));
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_FALSE(ParseEndpoint("nohost", &endpoint));
  EXPECT_FALSE(ParseEndpoint("h:0", &endpoint));
  EXPECT_FALSE(ParseEndpoint("h:99999", &endpoint));

  std::vector<Endpoint> list;
  ASSERT_TRUE(ParseEndpointList("127.0.0.1:1234,127.0.0.1:1235", &list));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[1].port, 1235);
  EXPECT_FALSE(ParseEndpointList("127.0.0.1:1234,,", &list));
  EXPECT_FALSE(ParseEndpointList("", &list));
}

// ------------------------------------------------------------ fake server

/// Deterministic Frontend double: answers from the query bytes alone
/// (no store), optionally holding callbacks until released — that is
/// how the tests force a precise number of requests in flight.
class FakeFrontend : public serving::Frontend {
 public:
  explicit FakeFrontend(size_t hold_until = 0) : hold_until_(hold_until) {}

  static serving::Response Answer(const std::string& query) {
    serving::Response response;
    response.ok = true;
    response.diversified = true;
    response.store_version = 1;
    uint64_t h = util::Fnv1a64(query.data(), query.size());
    for (int i = 0; i < 5; ++i) {
      response.ranking.push_back(static_cast<DocId>((h >> (8 * i)) & 0xff));
    }
    return response;
  }

  serving::Response Submit(const serving::Request& request) override {
    return Answer(request.query);
  }

  bool SubmitAsync(serving::Request request,
                   std::function<void(serving::Response)> callback) override {
    if (reject_all_) return false;
    std::vector<std::pair<serving::Request, std::function<void(serving::Response)>>>
        release;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (hold_until_ > 0) {
        held_.emplace_back(std::move(request), std::move(callback));
        if (held_.size() >= hold_until_) {
          release.swap(held_);
        }
      } else {
        release.emplace_back(std::move(request), std::move(callback));
      }
    }
    for (auto& [req, cb] : release) cb(Answer(req.query));
    return true;
  }

  void set_reject_all(bool reject) { reject_all_ = reject; }

 private:
  size_t hold_until_;
  bool reject_all_ = false;
  std::mutex mu_;
  std::vector<std::pair<serving::Request, std::function<void(serving::Response)>>>
      held_;
};

/// Raw blocking TCP connection for adversarial byte-level tests.
class RawConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }
  bool Send(const char* data, size_t size) {
    size_t sent = 0;
    while (sent < size) {
      ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
      if (n <= 0 && errno != EINTR) return false;
      if (n > 0) sent += static_cast<size_t>(n);
    }
    return true;
  }
  bool Send(const std::string& bytes) { return Send(bytes.data(), bytes.size()); }
  /// Reads until `parser` holds a frame or the peer closes; true on a
  /// frame, false on clean EOF.
  bool ReadFrame(FrameParser* parser, Frame* frame) {
    char buf[4096];
    while (!parser->HasFrame()) {
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (!parser->Feed(buf, static_cast<size_t>(n))) return false;
    }
    *frame = parser->Next();
    return true;
  }
  /// True when the peer closes the connection (possibly after sending
  /// bytes we do not care about).
  bool DrainUntilEof() {
    char buf[4096];
    while (true) {
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EINTR) return false;
    }
  }
  int fd_ = -1;
};

NetServerConfig LoopbackConfig() {
  NetServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;  // ephemeral
  return config;
}

TEST(NetServerTest, ServesDeterministicAnswersOverLoopback) {
  FakeFrontend frontend;
  NetServer server(&frontend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()))
      << client.last_error();
  for (const char* query : {"apple", "jaguar", "apple"}) {
    serving::Response remote = client.Submit(serving::Request(query));
    ASSERT_TRUE(remote.ok);
    serving::Response local = frontend.Submit(serving::Request(query));
    EXPECT_EQ(remote.ranking, local.ranking);
    EXPECT_EQ(remote.diversified, local.diversified);
    EXPECT_EQ(remote.store_version, local.store_version);
  }
  client.Close();
  server.Stop();
  NetServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServerTest, PipelinedAnswersMatchBlocking) {
  FakeFrontend frontend;
  NetServer server(&frontend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();

  std::vector<std::string> queries;
  for (int i = 0; i < 50; ++i) queries.push_back("query " + std::to_string(i));

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  std::vector<serving::Response> responses =
      client.SubmitPipelined(queries, /*window=*/8);
  ASSERT_EQ(responses.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << "query " << i;
    EXPECT_EQ(responses[i].ranking, FakeFrontend::Answer(queries[i]).ranking);
  }
  server.Stop();
}

TEST(NetServerTest, SlowLorisPartialWritesStillAnswer) {
  FakeFrontend frontend;
  NetServer server(&frontend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  std::string bytes = EncodeRequestFrame(serving::Request("slow", 5));
  // Dribble the frame one byte at a time: the server must wait for the
  // boundary, never over-read, never answer early.
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(conn.Send(bytes.data() + i, 1));
  }
  FrameParser parser;
  Frame frame;
  ASSERT_TRUE(conn.ReadFrame(&parser, &frame));
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.request_id, 5u);
  serving::Response response;
  ASSERT_TRUE(DecodeResponsePayload(frame, &response));
  EXPECT_EQ(response.ranking, FakeFrontend::Answer("slow").ranking);
  server.Stop();
}

TEST(NetServerTest, GarbageStreamGetsErrorFrameOrCloseAndServerSurvives) {
  FakeFrontend frontend;
  NetServer server(&frontend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();

  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string garbage(256, '\x5a');
    ASSERT_TRUE(conn.Send(garbage));
    // Contract: error frame and/or close — never a hang or crash.
    EXPECT_TRUE(conn.DrainUntilEof());
  }
  {
    // Checksum flip over the wire: same contract.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string bytes = EncodeRequestFrame(serving::Request("apple"));
    bytes[bytes.size() - 1] ^= 0x40;
    ASSERT_TRUE(conn.Send(bytes));
    EXPECT_TRUE(conn.DrainUntilEof());
  }
  {
    // Truncated frame then client close: just a close, not an error.
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string bytes = EncodeRequestFrame(serving::Request("apple"));
    ASSERT_TRUE(conn.Send(bytes.data(), bytes.size() / 2));
  }
  // The server still serves well-formed traffic afterwards.
  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  EXPECT_TRUE(client.Submit(serving::Request("after")).ok);
  server.Stop();
  EXPECT_EQ(server.stats().protocol_errors, 2u);
}

TEST(NetServerTest, ConnectionLimitShedsWithErrorFrame) {
  FakeFrontend frontend;
  NetServerConfig config = LoopbackConfig();
  config.max_connections = 1;
  NetServer server(&frontend, config);
  ASSERT_TRUE(server.Start()) << server.last_error();

  RemoteClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()));
  ASSERT_TRUE(first.Submit(serving::Request("hold")).ok);  // conn registered

  RawConn second;
  ASSERT_TRUE(second.Connect(server.port()));
  FrameParser parser;
  Frame frame;
  // The refusal is explicit: a shed error frame, then close.
  ASSERT_TRUE(second.ReadFrame(&parser, &frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  WireError error;
  ASSERT_TRUE(DecodeErrorPayload(frame, &error));
  EXPECT_EQ(error.code, ErrorCode::kShed);
  EXPECT_TRUE(second.DrainUntilEof());

  EXPECT_EQ(server.stats().connections_rejected, 1u);
  EXPECT_GE(server.stats().shed, 1u);
  server.Stop();
}

TEST(NetServerTest, PerConnectionInflightLimitShedsWithErrorFrame) {
  // Holds callbacks until 2 requests are in flight; the 3rd pipelined
  // request exceeds max_inflight_per_conn == 2 and must be shed with
  // an explicit error frame while the first two still answer.
  FakeFrontend frontend(/*hold_until=*/2);
  NetServerConfig config = LoopbackConfig();
  config.max_inflight_per_conn = 2;
  NetServer server(&frontend, config);
  ASSERT_TRUE(server.Start()) << server.last_error();

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  std::string burst;
  burst += EncodeRequestFrame(serving::Request("a", 1));
  burst += EncodeRequestFrame(serving::Request("b", 2));
  burst += EncodeRequestFrame(serving::Request("c", 3));
  ASSERT_TRUE(conn.Send(burst));

  FrameParser parser;
  size_t responses = 0, sheds = 0;
  for (int i = 0; i < 3; ++i) {
    Frame frame;
    ASSERT_TRUE(conn.ReadFrame(&parser, &frame));
    if (frame.type == FrameType::kResponse) {
      ++responses;
    } else if (frame.type == FrameType::kError) {
      WireError error;
      ASSERT_TRUE(DecodeErrorPayload(frame, &error));
      EXPECT_EQ(error.code, ErrorCode::kShed);
      EXPECT_EQ(frame.request_id, 3u);  // the over-limit request
      ++sheds;
    }
  }
  EXPECT_EQ(responses, 2u);
  EXPECT_EQ(sheds, 1u);
  server.Stop();
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(NetServerTest, FrontendQueueRejectionShedsWithErrorFrame) {
  FakeFrontend frontend;
  frontend.set_reject_all(true);
  NetServer server(&frontend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  serving::Response response = client.Submit(serving::Request("apple"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(client.last_error_code(), ErrorCode::kShed);
  // The connection stays usable after a shed.
  frontend.set_reject_all(false);
  EXPECT_TRUE(client.Submit(serving::Request("apple")).ok);
  server.Stop();
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(NetServerTest, ShedMetricIsRegistered) {
  obs::MetricsRegistry registry;
  FakeFrontend frontend;
  frontend.set_reject_all(true);
  NetServerConfig config = LoopbackConfig();
  config.registry = &registry;
  NetServer server(&frontend, config);
  ASSERT_TRUE(server.Start()) << server.last_error();

  RemoteClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  EXPECT_FALSE(client.Submit(serving::Request("apple")).ok);
  client.Close();
  server.Stop();

  bool found = false;
  for (const auto& sample : registry.Collect()) {
    if (sample.name == "net_shed_total") {
      found = true;
      EXPECT_EQ(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------- real store bit-identity

class NetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static serving::ServingConfig NodeConfig() {
    serving::ServingConfig config;
    config.num_workers = 1;
    config.queue_capacity = 256;
    config.max_batch = 4;
    config.params.diversify.k = 10;
    return config;
  }

  static std::vector<std::string> Mix() {
    std::vector<std::string> mix;
    for (const auto& [key, entry] : store_->entries()) mix.push_back(key);
    std::sort(mix.begin(), mix.end());
    mix.push_back(testbed_->universe().noise_queries[0]);
    mix.push_back(testbed_->universe().noise_queries[1]);
    return mix;
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
};

pipeline::Testbed* NetServingTest::testbed_ = nullptr;
store::DiversificationStore* NetServingTest::store_ = nullptr;

TEST_F(NetServingTest, RemoteNodeBitIdenticalToLocalNode) {
  serving::ServingNode local(store_, testbed_, NodeConfig());
  serving::ServingNode backend(store_, testbed_, NodeConfig());
  NetServer server(&backend, LoopbackConfig());
  ASSERT_TRUE(server.Start()) << server.last_error();
  RemoteClient remote;
  ASSERT_TRUE(remote.Connect("127.0.0.1", server.port()));

  // Both are just Frontends to the callers.
  serving::Frontend* local_frontend = &local;
  serving::Frontend* remote_frontend = &remote;
  for (const std::string& query : Mix()) {
    serving::Response a = local_frontend->Submit(serving::Request(query));
    serving::Response b = remote_frontend->Submit(serving::Request(query));
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(RankHash(a.ranking), RankHash(b.ranking)) << query;
    EXPECT_EQ(a.ranking, b.ranking);
    EXPECT_EQ(a.diversified, b.diversified);
    EXPECT_EQ(a.num_specializations, b.num_specializations);
  }
  remote.Close();
  server.Stop();
  local.Shutdown();
  backend.Shutdown();
}

TEST_F(NetServingTest, RemoteShardFleetBitIdenticalToInProcessCluster) {
  const size_t kShards = 2;
  // In-process reference cluster (pure hash partition, no replication).
  cluster::ClusterConfig cluster_config;
  cluster_config.num_shards = kShards;
  cluster_config.replicate_hot = 0;
  cluster_config.node = NodeConfig();
  cluster::ShardedCluster cluster(*store_, testbed_, nullptr, cluster_config);

  // Remote fleet: one server per shard slice, same partition.
  std::vector<std::unique_ptr<store::DiversificationStore>> shard_stores;
  std::vector<std::unique_ptr<serving::ServingNode>> shard_nodes;
  std::vector<std::unique_ptr<NetServer>> servers;
  std::vector<Endpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    store::ShardFilter filter;
    filter.num_shards = kShards;
    filter.shard_index = i;
    shard_stores.push_back(std::make_unique<store::DiversificationStore>(
        store::SplitStore(*store_, filter)));
    shard_nodes.push_back(std::make_unique<serving::ServingNode>(
        shard_stores.back().get(), testbed_, NodeConfig()));
    servers.push_back(
        std::make_unique<NetServer>(shard_nodes.back().get(),
                                    LoopbackConfig()));
    ASSERT_TRUE(servers.back()->Start()) << servers.back()->last_error();
    endpoints.push_back(Endpoint{"127.0.0.1", servers.back()->port()});
  }

  RemoteFrontend remote(endpoints);
  for (const std::string& query : Mix()) {
    serving::Response a = cluster.Submit(serving::Request(query));
    serving::Response b = remote.Submit(serving::Request(query));
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(RankHash(a.ranking), RankHash(b.ranking)) << query;
    EXPECT_EQ(a.diversified, b.diversified);
    EXPECT_FALSE(b.degraded);
  }
  EXPECT_EQ(remote.stats().degraded, 0u);
  EXPECT_EQ(remote.stats().dropped, 0u);
  for (auto& server : servers) server->Stop();
}

TEST_F(NetServingTest, DeadOwnerDegradesThenRecoversBitIdentical) {
  const size_t kShards = 2;
  std::vector<std::unique_ptr<store::DiversificationStore>> shard_stores;
  std::vector<Endpoint> endpoints;
  std::vector<std::unique_ptr<serving::ServingNode>> shard_nodes;
  std::vector<std::unique_ptr<NetServer>> servers;
  for (size_t i = 0; i < kShards; ++i) {
    store::ShardFilter filter;
    filter.num_shards = kShards;
    filter.shard_index = i;
    shard_stores.push_back(std::make_unique<store::DiversificationStore>(
        store::SplitStore(*store_, filter)));
    shard_nodes.push_back(std::make_unique<serving::ServingNode>(
        shard_stores.back().get(), testbed_, NodeConfig()));
    servers.push_back(std::make_unique<NetServer>(shard_nodes.back().get(),
                                                  LoopbackConfig()));
    ASSERT_TRUE(servers.back()->Start());
    endpoints.push_back(Endpoint{"127.0.0.1", servers.back()->port()});
  }

  RemoteFrontendConfig config;
  config.breaker_threshold = 2;
  config.breaker_probe_after = 2;
  RemoteFrontend remote(endpoints, config);

  // A stored query owned by shard 0 (the store is keyed normalized).
  std::string victim_query;
  for (const auto& [key, entry] : store_->entries()) {
    if (remote.OwnerOf(key) == 0) {
      victim_query = key;
      break;
    }
  }
  ASSERT_FALSE(victim_query.empty());

  serving::Response healthy = remote.Submit(serving::Request(victim_query));
  ASSERT_TRUE(healthy.ok);
  ASSERT_TRUE(healthy.diversified);
  EXPECT_FALSE(healthy.degraded);
  uint64_t healthy_hash = RankHash(healthy.ranking);

  // Kill the owner: answers must degrade (passthrough from shard 1),
  // and the breaker must open after `breaker_threshold` failures.
  uint16_t victim_port = servers[0]->port();
  servers[0]->Stop();
  servers[0].reset();
  shard_nodes[0]->Shutdown();

  uint64_t degraded_hash = 0;
  for (size_t i = 0; i < 4; ++i) {
    serving::Response degraded = remote.Submit(serving::Request(victim_query));
    ASSERT_TRUE(degraded.ok);
    EXPECT_TRUE(degraded.degraded);
    EXPECT_FALSE(degraded.diversified);  // passthrough, not the entry
    degraded_hash = RankHash(degraded.ranking);
  }
  EXPECT_EQ(remote.endpoint_state(0), EndpointState::kOpen);
  EXPECT_GE(remote.stats().degraded, 4u);
  EXPECT_GE(remote.stats().breaker_opens, 1u);

  // Respawn the shard on the same port: the next probe reconnects and
  // the answer is bit-identical to the pre-kill one.
  shard_nodes[0] = std::make_unique<serving::ServingNode>(
      shard_stores[0].get(), testbed_, NodeConfig());
  NetServerConfig respawn_config = LoopbackConfig();
  respawn_config.port = victim_port;
  servers[0] = std::make_unique<NetServer>(shard_nodes[0].get(),
                                           respawn_config);
  ASSERT_TRUE(servers[0]->Start()) << servers[0]->last_error();

  bool recovered = false;
  for (size_t i = 0; i < 16 && !recovered; ++i) {
    serving::Response response = remote.Submit(serving::Request(victim_query));
    ASSERT_TRUE(response.ok);
    if (!response.degraded) {
      recovered = true;
      EXPECT_TRUE(response.diversified);
      EXPECT_EQ(RankHash(response.ranking), healthy_hash);
    } else {
      EXPECT_EQ(RankHash(response.ranking), degraded_hash);
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(remote.endpoint_state(0), EndpointState::kClosed);
  for (auto& server : servers) {
    if (server) server->Stop();
  }
}

TEST_F(NetServingTest, ReplayMixDrivesARemoteFrontend) {
  serving::ServingNode backend(store_, testbed_, NodeConfig());
  NetServer server(&backend, LoopbackConfig());
  ASSERT_TRUE(server.Start());
  RemoteClient remote;
  ASSERT_TRUE(remote.Connect("127.0.0.1", server.port()));

  std::vector<std::string> mix = Mix();
  serving::ReplayOutcome outcome = serving::ReplayMix(&remote, mix);
  EXPECT_EQ(outcome.accepted, mix.size());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace optselect
