// Unit tests for the index module: inverted index statistics, DPH scoring
// properties, top-k search, snippet extraction.

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/document_store.h"
#include "corpus/synthetic_corpus.h"
#include "index/dph_scorer.h"
#include "index/inverted_index.h"
#include "index/searcher.h"
#include "index/snippet_extractor.h"
#include "synth/topic_universe.h"
#include "text/analyzer.h"

namespace optselect {
namespace index {
namespace {

class SmallIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Add("u0", "leopard tank", "leopard tank armor battle leopard");
    store_.Add("u1", "leopard cat", "leopard feline jungle cat");
    store_.Add("u2", "walnut", "walnut tree orchard walnut walnut");
    store_.Add("u3", "empty", "");
    index_ = InvertedIndex::Build(store_, &analyzer_);
  }

  corpus::DocumentStore store_;
  text::Analyzer analyzer_;
  InvertedIndex index_;
};

// ------------------------------------------------------------ InvertedIndex

TEST_F(SmallIndexTest, CollectionStats) {
  EXPECT_EQ(index_.num_docs(), 4u);
  EXPECT_GT(index_.num_terms(), 0u);
  EXPECT_GT(index_.total_tokens(), 0u);
  EXPECT_GT(index_.average_doc_length(), 0.0);
  // Doc 3 is title-only ("empty" → one token, not a stopword).
  EXPECT_EQ(index_.DocLength(3), 1u);
}

TEST_F(SmallIndexTest, PostingsSortedWithCorrectTf) {
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  ASSERT_NE(leopard, text::kInvalidTermId);
  const auto& plist = index_.Postings(leopard);
  ASSERT_EQ(plist.size(), 2u);
  EXPECT_EQ(plist[0].doc, 0u);
  EXPECT_EQ(plist[0].tf, 3u);  // title + 2 body occurrences
  EXPECT_EQ(plist[1].doc, 1u);
  EXPECT_EQ(plist[1].tf, 2u);
  EXPECT_TRUE(std::is_sorted(
      plist.begin(), plist.end(),
      [](const Posting& a, const Posting& b) { return a.doc < b.doc; }));
}

TEST_F(SmallIndexTest, FrequencyAccessors) {
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  text::TermId walnut = analyzer_.vocabulary().Lookup("walnut");
  EXPECT_EQ(index_.DocFrequency(leopard), 2u);
  EXPECT_EQ(index_.CollectionFrequency(leopard), 5u);
  EXPECT_EQ(index_.DocFrequency(walnut), 1u);
  EXPECT_EQ(index_.CollectionFrequency(walnut), 4u);
  EXPECT_EQ(index_.DocFrequency(999999), 0u);
  EXPECT_TRUE(index_.Postings(999999).empty());
}

// -------------------------------------------------------------- DphScorer

TEST_F(SmallIndexTest, DphPositiveForMatch) {
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  DphScorer scorer(&index_);
  for (const Posting& p : index_.Postings(leopard)) {
    EXPECT_GT(scorer.Score(p, leopard), 0.0);
  }
}

TEST_F(SmallIndexTest, DphZeroForZeroTf) {
  DphScorer scorer(&index_);
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  EXPECT_DOUBLE_EQ(scorer.Score(Posting{0, 0}, leopard), 0.0);
}

TEST_F(SmallIndexTest, DphScalesWithQueryTermWeight) {
  DphScorer scorer(&index_);
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  Posting p = index_.Postings(leopard)[0];
  EXPECT_NEAR(scorer.Score(p, leopard, 2.0), 2.0 * scorer.Score(p, leopard),
              1e-12);
}

TEST(DphPropertyTest, HandComputedValueRegression) {
  // Frozen regression value for the DPH formula on a tiny collection:
  // two docs, the scored term appears tf=2 in a doc of length 4; the
  // other doc has length 4 as well; N=2, TF=2, avgl=4.
  corpus::DocumentStore store;
  store.Add("u0", "t0", "apple apple pear plum");
  store.Add("u1", "t1", "grape melon fig date");
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(store, &analyzer);
  ASSERT_EQ(index.num_docs(), 2u);
  ASSERT_DOUBLE_EQ(index.average_doc_length(), 5.0);  // + title tokens

  text::TermId apple = analyzer.vocabulary().Lookup("appl");
  ASSERT_NE(apple, text::kInvalidTermId);
  const Posting& p = index.Postings(apple)[0];
  ASSERT_EQ(p.tf, 2u);
  double l = index.DocLength(p.doc);
  double f = 2.0 / l;
  double norm = (1.0 - f) * (1.0 - f) / 3.0;
  double expected =
      norm * (2.0 * std::log2((2.0 * 5.0 / l) * (2.0 / 2.0)) +
              0.5 * std::log2(2.0 * M_PI * 2.0 * (1.0 - f)));
  DphScorer scorer(&index);
  EXPECT_NEAR(scorer.Score(p, apple), expected, 1e-12);
}

TEST(DphPropertyTest, RarerTermsScoreHigher) {
  // Build a synthetic collection where "rare" appears in 1 doc and
  // "common" in many, same tf and doc length.
  corpus::DocumentStore store;
  store.Add("u", "t", "rare common filler1 filler2");
  for (int i = 0; i < 20; ++i) {
    store.Add("u", "t", "common fillerx fillery fillerz");
  }
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(store, &analyzer);
  DphScorer scorer(&index);

  text::TermId rare = analyzer.vocabulary().Lookup("rare");
  text::TermId common = analyzer.vocabulary().Lookup("common");
  const Posting& rare_p = index.Postings(rare)[0];
  const Posting& common_p = index.Postings(common)[0];
  ASSERT_EQ(rare_p.doc, common_p.doc);  // same document, same length
  EXPECT_GT(scorer.Score(rare_p, rare), scorer.Score(common_p, common));
}

// ---------------------------------------------------------------- Searcher

TEST_F(SmallIndexTest, SearchReturnsExactlyTheMatchingDocs) {
  Searcher searcher(&index_, &analyzer_);
  ResultList results = searcher.Search("leopard", 10);
  ASSERT_EQ(results.size(), 2u);
  std::set<DocId> docs{results[0].doc, results[1].doc};
  EXPECT_EQ(docs, (std::set<DocId>{0u, 1u}));
  EXPECT_GE(results[0].score, results[1].score);
}

TEST(SearchTfRankingTest, HigherTfWinsAtEqualLength) {
  // DPH normalizes by document length; with equal lengths the document
  // with more query-term occurrences must rank first.
  corpus::DocumentStore store;
  store.Add("uA", "docA",
            "leopard leopard leopard filler1 filler2 filler3 filler4");
  store.Add("uB", "docB",
            "leopard filler5 filler6 filler7 filler8 filler9 fillera");
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(store, &analyzer);
  Searcher searcher(&index, &analyzer);
  ResultList results = searcher.Search("leopard", 10);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST_F(SmallIndexTest, SearchRespectsK) {
  Searcher searcher(&index_, &analyzer_);
  EXPECT_EQ(searcher.Search("leopard", 1).size(), 1u);
  EXPECT_TRUE(searcher.Search("leopard", 0).empty());
}

TEST_F(SmallIndexTest, MultiTermQueryFavorsDocsMatchingBoth) {
  Searcher searcher(&index_, &analyzer_);
  ResultList results = searcher.Search("leopard tank", 10);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc, 0u);  // only doc with both terms
}

TEST_F(SmallIndexTest, UnknownQueryYieldsNothing) {
  Searcher searcher(&index_, &analyzer_);
  EXPECT_TRUE(searcher.Search("zzzqqq", 10).empty());
  EXPECT_TRUE(searcher.Search("", 10).empty());
}

TEST_F(SmallIndexTest, ScoresSortedDescending) {
  Searcher searcher(&index_, &analyzer_);
  ResultList results = searcher.Search("leopard walnut cat", 10);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST(SearcherDeterminismTest, RepeatedSearchesIdentical) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 4;
  auto universe = synth::GenerateTopicUniverse(ucfg, 0);
  corpus::SyntheticCorpusConfig ccfg;
  ccfg.docs_per_intent = 8;
  ccfg.background_docs = 200;
  auto corpus = corpus::GenerateSyntheticCorpus(ccfg, universe.topics);
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(corpus.store, &analyzer);
  Searcher searcher(&index, &analyzer);

  const std::string query = universe.topics[0].root_query;
  ResultList a = searcher.Search(query, 50);
  ResultList b = searcher.Search(query, 50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(SearcherRetrievalQualityTest, PlantedDocsRankAboveBackground) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 3;
  auto universe = synth::GenerateTopicUniverse(ucfg, 0);
  corpus::SyntheticCorpusConfig ccfg;
  ccfg.docs_per_intent = 10;
  ccfg.background_docs = 500;
  auto corpus = corpus::GenerateSyntheticCorpus(ccfg, universe.topics);
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(corpus.store, &analyzer);
  Searcher searcher(&index, &analyzer);

  // Searching a specialization query should surface its planted cluster.
  const auto& topic = corpus.topics.topic(0);
  const std::string& sub_query = topic.subtopics[0].query;
  ResultList results = searcher.Search(sub_query, 10);
  ASSERT_FALSE(results.empty());
  size_t relevant_in_top = 0;
  for (const SearchResult& hit : results) {
    if (corpus.qrels.Relevant(topic.id, 0, hit.doc)) ++relevant_in_top;
  }
  EXPECT_GE(relevant_in_top, results.size() / 2)
      << "planted cluster should dominate its own specialization query";
}

// ------------------------------------------------- Conjunctive retrieval

TEST_F(SmallIndexTest, ConjunctiveRequiresAllTerms) {
  Searcher searcher(&index_, &analyzer_);
  // "leopard tank": only doc 0 contains both.
  ResultList results = searcher.SearchConjunctive("leopard tank", 10);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 0u);
  // Disjunctive over the same query returns both leopard docs.
  EXPECT_EQ(searcher.Search("leopard tank", 10).size(), 2u);
}

TEST_F(SmallIndexTest, ConjunctiveEmptyIntersectionIsEmpty) {
  Searcher searcher(&index_, &analyzer_);
  // "leopard" and "walnut" occur in disjoint documents.
  EXPECT_TRUE(searcher.SearchConjunctive("leopard walnut", 10).empty());
  EXPECT_TRUE(searcher.SearchConjunctive("", 10).empty());
  // Unknown terms are dropped by read-only analysis (consistent with the
  // disjunctive path), so the remaining terms still match.
  EXPECT_FALSE(
      searcher.SearchConjunctive("leopard unicornxyz", 10).empty());
}

TEST_F(SmallIndexTest, ConjunctiveSingleTermEqualsDisjunctive) {
  Searcher searcher(&index_, &analyzer_);
  ResultList conj = searcher.SearchConjunctive("leopard", 10);
  ResultList disj = searcher.Search("leopard", 10);
  ASSERT_EQ(conj.size(), disj.size());
  for (size_t i = 0; i < conj.size(); ++i) {
    EXPECT_EQ(conj[i].doc, disj[i].doc);
    EXPECT_DOUBLE_EQ(conj[i].score, disj[i].score);
  }
}

TEST_F(SmallIndexTest, ConjunctiveScoresSumBothTerms) {
  Searcher searcher(&index_, &analyzer_);
  ResultList conj = searcher.SearchConjunctive("leopard tank", 10);
  ResultList root_only = searcher.Search("leopard", 10);
  ASSERT_FALSE(conj.empty());
  // Conjunctive score (both terms) exceeds the single-term score of the
  // same document.
  double root_score = 0;
  for (const SearchResult& r : root_only) {
    if (r.doc == conj[0].doc) root_score = r.score;
  }
  EXPECT_GT(conj[0].score, root_score);
}

TEST(ConjunctivePropertyTest, SubsetOfDisjunctiveMatches) {
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 5;
  auto universe = synth::GenerateTopicUniverse(ucfg, 0);
  corpus::SyntheticCorpusConfig ccfg;
  ccfg.docs_per_intent = 10;
  ccfg.background_docs = 300;
  auto corpus = corpus::GenerateSyntheticCorpus(ccfg, universe.topics);
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(corpus.store, &analyzer);
  Searcher searcher(&index, &analyzer);

  for (const auto& topic : universe.topics) {
    for (const auto& intent : topic.intents) {
      ResultList conj =
          searcher.SearchConjunctive(intent.query, 1000);
      ResultList disj = searcher.Search(intent.query, 100000);
      std::set<DocId> disj_docs;
      for (const SearchResult& r : disj) disj_docs.insert(r.doc);
      std::vector<text::TermId> terms =
          analyzer.AnalyzeReadOnly(intent.query);
      for (const SearchResult& r : conj) {
        EXPECT_TRUE(disj_docs.count(r.doc));
        // Every conjunctive hit contains every query term.
        for (text::TermId t : terms) {
          bool found = false;
          for (const Posting& p : index.Postings(t)) {
            if (p.doc == r.doc) {
              found = true;
              break;
            }
          }
          EXPECT_TRUE(found) << "doc " << r.doc << " misses a term";
        }
      }
    }
  }
}

// -------------------------------------------------------- SnippetExtractor

TEST_F(SmallIndexTest, SnippetContainsQueryNeighborhood) {
  SnippetExtractor extractor(&analyzer_);
  std::vector<text::TermId> q = analyzer_.AnalyzeReadOnly("battle");
  std::string snippet = extractor.Extract(store_.Get(0), q);
  EXPECT_NE(snippet.find("battle"), std::string::npos);
  // Title always included.
  EXPECT_NE(snippet.find("leopard tank"), std::string::npos);
}

TEST_F(SmallIndexTest, SnippetOfEmptyBodyIsTitle) {
  SnippetExtractor extractor(&analyzer_);
  std::vector<text::TermId> q = analyzer_.AnalyzeReadOnly("empty");
  EXPECT_EQ(extractor.Extract(store_.Get(3), q), "empty");
}

TEST(SnippetWindowTest, PicksDensestWindow) {
  corpus::DocumentStore store;
  // Query terms clustered at the far end of a long body.
  std::string body;
  for (int i = 0; i < 200; ++i) body += "filler ";
  body += "target target target nearby";
  store.Add("u", "doc", body);
  text::Analyzer analyzer;
  InvertedIndex index = InvertedIndex::Build(store, &analyzer);

  SnippetExtractor::Options opt;
  opt.window_tokens = 4;
  SnippetExtractor extractor(&analyzer, opt);
  std::vector<text::TermId> q = analyzer.AnalyzeReadOnly("target nearby");
  std::string snippet = extractor.Extract(store.Get(0), q);
  EXPECT_NE(snippet.find("target"), std::string::npos);
  EXPECT_NE(snippet.find("nearby"), std::string::npos);
  // The densest 4-token window is exactly the query-term run at the end.
  EXPECT_EQ(snippet.find("filler"), std::string::npos);
}

TEST_F(SmallIndexTest, ExtractVectorMatchesSnippetTerms) {
  SnippetExtractor extractor(&analyzer_);
  std::vector<text::TermId> q = analyzer_.AnalyzeReadOnly("leopard");
  text::TermVector v = extractor.ExtractVector(store_.Get(0), q);
  EXPECT_FALSE(v.empty());
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  EXPECT_GT(v.WeightOf(leopard), 0.0);
}

TEST_F(SmallIndexTest, IdfWeightedVectorsDemoteCommonTerms) {
  // "leopard" appears in two docs, "armor" in one: with idf weighting the
  // rarer term must carry more weight per occurrence.
  SnippetExtractor raw(&analyzer_);
  SnippetExtractor weighted(&analyzer_, &index_);
  std::vector<text::TermId> q = analyzer_.AnalyzeReadOnly("leopard armor");
  text::TermVector v = weighted.ExtractVector(store_.Get(0), q);
  text::TermId leopard = analyzer_.vocabulary().Lookup("leopard");
  text::TermId armor = analyzer_.vocabulary().Lookup("armor");
  // Raw tf: leopard 3, armor 1. idf flips the per-occurrence weight.
  text::TermVector r = raw.ExtractVector(store_.Get(0), q);
  double raw_ratio = r.WeightOf(leopard) / r.WeightOf(armor);
  double weighted_ratio = v.WeightOf(leopard) / v.WeightOf(armor);
  EXPECT_LT(weighted_ratio, raw_ratio);
}

TEST_F(SmallIndexTest, IdfWeightingReducesCrossTopicSimilarity) {
  // Docs 0 and 1 share only "leopard" (a common term); idf weighting
  // must shrink their cosine relative to raw tf vectors.
  SnippetExtractor raw(&analyzer_);
  SnippetExtractor weighted(&analyzer_, &index_);
  std::vector<text::TermId> q = analyzer_.AnalyzeReadOnly("leopard");
  double raw_cos = raw.ExtractVector(store_.Get(0), q)
                       .Cosine(raw.ExtractVector(store_.Get(1), q));
  double wtd_cos = weighted.ExtractVector(store_.Get(0), q)
                       .Cosine(weighted.ExtractVector(store_.Get(1), q));
  EXPECT_LT(wtd_cos, raw_cos);
}

}  // namespace
}  // namespace index
}  // namespace optselect
