// Tests for the diversification algorithms: OptSelect (Algorithm 2),
// xQuAD, IASelect, MMR, and the factory. Includes hand-crafted instances,
// cross-algorithm parameterized properties, and brute-force comparisons on
// small instances.

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/iaselect.h"
#include "core/mmr.h"
#include "core/optselect.h"
#include "core/parallel_optselect.h"
#include "core/select_view.h"
#include "core/utility.h"
#include "core/xquad.h"
#include "util/rng.h"

namespace optselect {
namespace core {
namespace {

using text::TermVector;

// Builds a random instance with explicit control over the utility matrix;
// candidate vectors are only needed by MMR and are derived to loosely
// match the utilities.
struct RandomInstance {
  DiversificationInput input;
  UtilityMatrix utilities;
};

RandomInstance MakeRandomInstance(util::Rng* rng, size_t n, size_t m,
                                  double sparsity = 0.5) {
  RandomInstance ri;
  ri.input.query = "q";
  ri.utilities = UtilityMatrix(n, m);

  std::vector<double> probs(m);
  double total = 0;
  for (double& p : probs) {
    p = rng->UniformDouble() + 0.05;
    total += p;
  }
  for (size_t j = 0; j < m; ++j) {
    SpecializationProfile sp;
    sp.query = "q s" + std::to_string(j);
    sp.probability = probs[j] / total;
    ri.input.specializations.push_back(sp);
  }

  for (size_t i = 0; i < n; ++i) {
    Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = rng->UniformDouble();
    std::vector<TermVector::Entry> entries;
    for (size_t j = 0; j < m; ++j) {
      if (rng->UniformDouble() < sparsity) {
        double u = rng->UniformDouble();
        ri.utilities.Set(i, j, u);
        entries.emplace_back(static_cast<text::TermId>(j), u);
      }
    }
    entries.emplace_back(static_cast<text::TermId>(m + i), 0.3);
    c.vector = TermVector::FromEntries(entries);
    ri.input.candidates.push_back(std::move(c));
  }
  return ri;
}

// ----------------------------------------------- Cross-algorithm properties

class AllAlgorithmsTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Diversifier> Algo() const {
    auto r = MakeDiversifier(GetParam());
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }
};

INSTANTIATE_TEST_SUITE_P(Algorithms, AllAlgorithmsTest,
                         ::testing::Values("optselect", "xquad", "iaselect",
                                           "mmr"));

TEST_P(AllAlgorithmsTest, SelectsExactlyKDistinctValidIndices) {
  util::Rng rng(99);
  auto algo = Algo();
  for (int round = 0; round < 10; ++round) {
    size_t n = 5 + rng.Uniform(40);
    size_t m = 2 + rng.Uniform(5);
    RandomInstance ri = MakeRandomInstance(&rng, n, m);
    DiversifyParams params;
    params.k = 1 + rng.Uniform(n + 5);  // may exceed n
    std::vector<size_t> picks =
        algo->Select(ri.input, ri.utilities, params);
    EXPECT_EQ(picks.size(), std::min(params.k, n));
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), picks.size()) << "duplicate selections";
    for (size_t i : picks) EXPECT_LT(i, n);
  }
}

TEST_P(AllAlgorithmsTest, KZeroYieldsEmpty) {
  util::Rng rng(7);
  auto algo = Algo();
  RandomInstance ri = MakeRandomInstance(&rng, 10, 3);
  DiversifyParams params;
  params.k = 0;
  EXPECT_TRUE(algo->Select(ri.input, ri.utilities, params).empty());
}

TEST_P(AllAlgorithmsTest, EmptyInputYieldsEmpty) {
  auto algo = Algo();
  DiversificationInput input;
  UtilityMatrix utilities(0, 0);
  DiversifyParams params;
  params.k = 5;
  EXPECT_TRUE(algo->Select(input, utilities, params).empty());
}

TEST_P(AllAlgorithmsTest, Deterministic) {
  util::Rng rng(1001);
  auto algo = Algo();
  RandomInstance ri = MakeRandomInstance(&rng, 60, 4);
  DiversifyParams params;
  params.k = 15;
  auto a = algo->Select(ri.input, ri.utilities, params);
  auto b = algo->Select(ri.input, ri.utilities, params);
  EXPECT_EQ(a, b);
}

TEST_P(AllAlgorithmsTest, KEqualsNSelectsEverything) {
  util::Rng rng(31);
  auto algo = Algo();
  RandomInstance ri = MakeRandomInstance(&rng, 12, 3);
  DiversifyParams params;
  params.k = 12;
  auto picks = algo->Select(ri.input, ri.utilities, params);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 12u);
}

// ----------------------------------------------------------------- Factory

TEST(FactoryTest, CreatesAllAdvertisedAlgorithms) {
  for (const std::string& name : AvailableDiversifiers()) {
    auto r = MakeDiversifier(name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_FALSE(r.value()->name().empty());
  }
}

TEST(FactoryTest, CaseInsensitive) {
  EXPECT_TRUE(MakeDiversifier("OptSelect").ok());
  EXPECT_TRUE(MakeDiversifier("XQUAD").ok());
}

TEST(FactoryTest, UnknownNameFails) {
  auto r = MakeDiversifier("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- OptSelect

TEST(OptSelectTest, OverallUtilityFormula) {
  util::Rng rng(5);
  RandomInstance ri = MakeRandomInstance(&rng, 6, 3);
  const double lambda = 0.15;
  for (size_t i = 0; i < 6; ++i) {
    double expected = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      expected += (1.0 - lambda) * ri.input.candidates[i].relevance +
                  lambda * ri.input.specializations[j].probability *
                      ri.utilities.At(i, j);
    }
    EXPECT_NEAR(OptSelectDiversifier::OverallUtility(ri.input, ri.utilities,
                                                     i, lambda),
                expected, 1e-12);
  }
}

TEST(OptSelectTest, OutputOrderedByOverallUtility) {
  util::Rng rng(6);
  RandomInstance ri = MakeRandomInstance(&rng, 40, 4);
  OptSelectDiversifier algo;
  DiversifyParams params;
  params.k = 10;
  auto picks = algo.Select(ri.input, ri.utilities, params);
  for (size_t i = 1; i < picks.size(); ++i) {
    EXPECT_GE(OptSelectDiversifier::OverallUtility(ri.input, ri.utilities,
                                                   picks[i - 1],
                                                   params.lambda),
              OptSelectDiversifier::OverallUtility(ri.input, ri.utilities,
                                                   picks[i], params.lambda) -
                  1e-12);
  }
}

TEST(OptSelectTest, ProportionalCoverageConstraintHolds) {
  // Constraint (Section 3.1.3): for each q′, at least ⌊k·P(q′|q)⌋ selected
  // documents have positive utility for q′ (when enough exist).
  util::Rng rng(8);
  for (int round = 0; round < 20; ++round) {
    size_t n = 30 + rng.Uniform(50);
    size_t m = 2 + rng.Uniform(4);
    RandomInstance ri = MakeRandomInstance(&rng, n, m, 0.6);
    OptSelectDiversifier algo;
    DiversifyParams params;
    params.k = 10 + rng.Uniform(10);
    auto picks = algo.Select(ri.input, ri.utilities, params);

    for (size_t j = 0; j < m; ++j) {
      size_t quota = static_cast<size_t>(std::floor(
          static_cast<double>(params.k) *
          ri.input.specializations[j].probability));
      size_t available = 0;
      for (size_t i = 0; i < n; ++i) {
        if (ri.utilities.At(i, j) > 0) ++available;
      }
      size_t covered = 0;
      for (size_t i : picks) {
        if (ri.utilities.At(i, j) > 0) ++covered;
      }
      EXPECT_GE(covered, std::min(quota, available))
          << "spec " << j << " quota " << quota << " available "
          << available;
    }
  }
}

TEST(OptSelectTest, UnconstrainedCaseMatchesTopKByUtility) {
  // When every candidate covers every specialization the constraints are
  // satisfied by any selection, so OptSelect must return exactly the
  // top-k by overall utility.
  util::Rng rng(12);
  size_t n = 30;
  size_t m = 3;
  RandomInstance ri = MakeRandomInstance(&rng, n, m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      ri.utilities.Set(i, j, 0.1 + 0.8 * rng.UniformDouble());
    }
  }
  OptSelectDiversifier algo;
  DiversifyParams params;
  params.k = 8;
  auto picks = algo.Select(ri.input, ri.utilities, params);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return OptSelectDiversifier::OverallUtility(ri.input, ri.utilities, a,
                                                params.lambda) >
           OptSelectDiversifier::OverallUtility(ri.input, ri.utilities, b,
                                                params.lambda);
  });
  std::set<size_t> expected(order.begin(), order.begin() + params.k);
  std::set<size_t> got(picks.begin(), picks.end());
  EXPECT_EQ(got, expected);
}

TEST(OptSelectTest, DisjointSupportsMatchBruteForceOptimum) {
  // With disjoint specialization supports the constrained problem
  // decomposes; compare the achieved objective against exhaustive search
  // over all constraint-satisfying k-subsets.
  util::Rng rng(14);
  const size_t n = 12;
  const size_t m = 3;
  const size_t k = 4;

  RandomInstance ri = MakeRandomInstance(&rng, n, m, 0.0);
  // Candidate i supports spec i % m only.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      ri.utilities.Set(i, j, j == i % m ? 0.2 + rng.UniformDouble() : 0.0);
    }
  }
  DiversifyParams params;
  params.k = k;

  auto overall = [&](size_t i) {
    return OptSelectDiversifier::OverallUtility(ri.input, ri.utilities, i,
                                                params.lambda);
  };
  auto satisfies = [&](const std::vector<size_t>& sel) {
    for (size_t j = 0; j < m; ++j) {
      size_t quota = static_cast<size_t>(std::floor(
          static_cast<double>(k) * ri.input.specializations[j].probability));
      size_t covered = 0;
      for (size_t i : sel) {
        if (ri.utilities.At(i, j) > 0) ++covered;
      }
      if (covered < quota) return false;
    }
    return true;
  };

  // Brute force all C(12,4) = 495 subsets.
  double best = -1;
  std::vector<size_t> idx(k);
  std::function<void(size_t, size_t)> rec = [&](size_t start, size_t depth) {
    if (depth == k) {
      if (!satisfies(idx)) return;
      double total = 0;
      for (size_t i : idx) total += overall(i);
      best = std::max(best, total);
      return;
    }
    for (size_t i = start; i < n; ++i) {
      idx[depth] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
  ASSERT_GE(best, 0.0) << "no feasible subset";

  OptSelectDiversifier algo;
  auto picks = algo.Select(ri.input, ri.utilities, params);
  double achieved = 0;
  for (size_t i : picks) achieved += overall(i);
  EXPECT_NEAR(achieved, best, 1e-9)
      << "OptSelect should solve the decomposable case optimally";
}

TEST(OptSelectTest, QuotaSatisfiedByGenuinelyUsefulDocOnly) {
  // Regression for the quickstart scenario: a relevance-heavy candidate
  // with *zero* utility for a minority specialization must not satisfy
  // that specialization's quota; the minority doc must be selected.
  DiversificationInput input;
  input.query = "jaguar";
  for (int i = 0; i < 4; ++i) {
    Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = 1.0 - 0.1 * i;
    input.candidates.push_back(c);
  }
  SpecializationProfile cars, guitars;
  cars.probability = 0.8;
  guitars.probability = 0.2;
  input.specializations = {cars, guitars};

  UtilityMatrix u(4, 2);
  u.Set(0, 0, 0.9);  // three strong car docs
  u.Set(1, 0, 0.8);
  u.Set(2, 0, 0.7);
  u.Set(3, 1, 0.9);  // the only guitar doc, least relevant

  OptSelectDiversifier algo;
  DiversifyParams params;
  params.k = 3;
  auto picks = algo.Select(input, u, params);
  ASSERT_EQ(picks.size(), 3u);
  EXPECT_NE(std::find(picks.begin(), picks.end(), 3u), picks.end())
      << "the guitar doc must occupy the minority quota slot";
}

TEST(OptSelectTest, SharedCoverageDocConsumesBothQuotas) {
  // A document useful for two specializations covers both (set-cover
  // semantics): with k = 2 the versatile doc plus one more must win over
  // three single-intent docs.
  DiversificationInput input;
  input.query = "q";
  for (int i = 0; i < 3; ++i) {
    Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = 0.0;
    input.candidates.push_back(c);
  }
  SpecializationProfile a, b;
  a.probability = 0.5;
  b.probability = 0.5;
  input.specializations = {a, b};
  UtilityMatrix u(3, 2);
  u.Set(0, 0, 0.9);
  u.Set(0, 1, 0.9);  // covers both
  u.Set(1, 0, 0.5);
  u.Set(2, 1, 0.5);
  OptSelectDiversifier algo;
  DiversifyParams params;
  params.k = 2;
  params.lambda = 1.0;
  auto picks = algo.Select(input, u, params);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 0u) << "versatile doc has the highest utility";
}

// ------------------------------------------------------------------- xQuAD

TEST(XQuadTest, FirstPickMaximizesEquation5) {
  util::Rng rng(21);
  RandomInstance ri = MakeRandomInstance(&rng, 25, 3);
  XQuadDiversifier algo;
  DiversifyParams params;
  params.k = 5;
  auto picks = algo.Select(ri.input, ri.utilities, params);
  ASSERT_FALSE(picks.empty());

  std::vector<double> probs;
  for (const auto& sp : ri.input.specializations) {
    probs.push_back(sp.probability);
  }
  double best = -1;
  size_t best_i = 0;
  for (size_t i = 0; i < ri.input.candidates.size(); ++i) {
    double score = (1 - params.lambda) * ri.input.candidates[i].relevance +
                   params.lambda * ri.utilities.WeightedRowSum(i, probs.data());
    if (score > best) {
      best = score;
      best_i = i;
    }
  }
  EXPECT_EQ(picks[0], best_i);
}

TEST(XQuadTest, PenalizesRedundantCoverage) {
  // Two specializations, equal probability. Candidates 0,1 cover spec 0
  // with high utility; candidate 2 covers spec 1 with moderate utility.
  // After picking 0, xQuAD must prefer 2 over 1 despite 1's higher
  // isolated score.
  DiversificationInput input;
  input.query = "q";
  for (int i = 0; i < 3; ++i) {
    Candidate c;
    c.doc = i;
    c.relevance = 0.0;  // isolate the diversity term
    input.candidates.push_back(c);
  }
  SpecializationProfile s0, s1;
  s0.probability = 0.5;
  s1.probability = 0.5;
  input.specializations = {s0, s1};
  UtilityMatrix u(3, 2);
  u.Set(0, 0, 0.9);
  u.Set(1, 0, 0.8);
  u.Set(2, 1, 0.5);

  XQuadDiversifier algo;
  DiversifyParams params;
  params.k = 2;
  params.lambda = 1.0;  // pure diversity
  auto picks = algo.Select(input, u, params);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 2u) << "redundant candidate 1 must lose to 2";
}

TEST(XQuadTest, LambdaZeroIsPureRelevanceOrder) {
  util::Rng rng(23);
  RandomInstance ri = MakeRandomInstance(&rng, 20, 3);
  XQuadDiversifier algo;
  DiversifyParams params;
  params.k = 20;
  params.lambda = 0.0;
  auto picks = algo.Select(ri.input, ri.utilities, params);
  for (size_t i = 1; i < picks.size(); ++i) {
    EXPECT_GE(ri.input.candidates[picks[i - 1]].relevance,
              ri.input.candidates[picks[i]].relevance - 1e-12);
  }
}

// ---------------------------------------------------------------- IASelect

TEST(IaSelectTest, ObjectiveHandComputed) {
  DiversificationInput input;
  input.query = "q";
  input.candidates.resize(2);
  SpecializationProfile s0;
  s0.probability = 1.0;
  input.specializations = {s0};
  UtilityMatrix u(2, 1);
  u.Set(0, 0, 0.5);
  u.Set(1, 0, 0.5);
  // P(S) = 1 · (1 − (1−0.5)(1−0.5)) = 0.75.
  EXPECT_NEAR(IaSelectDiversifier::Objective(input, u, {0, 1}), 0.75,
              1e-12);
  EXPECT_NEAR(IaSelectDiversifier::Objective(input, u, {0}), 0.5, 1e-12);
  EXPECT_NEAR(IaSelectDiversifier::Objective(input, u, {}), 0.0, 1e-12);
}

TEST(IaSelectTest, GreedyWithinSubmodularBoundOfBruteForce) {
  // Greedy on a monotone submodular objective achieves ≥ (1 − 1/e)·OPT.
  util::Rng rng(25);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 10;
    const size_t m = 3;
    const size_t k = 3;
    RandomInstance ri = MakeRandomInstance(&rng, n, m, 0.5);

    double opt = 0;
    std::vector<size_t> idx(k);
    std::function<void(size_t, size_t)> rec = [&](size_t start,
                                                  size_t depth) {
      if (depth == k) {
        opt = std::max(opt,
                       IaSelectDiversifier::Objective(ri.input, ri.utilities,
                                                      idx));
        return;
      }
      for (size_t i = start; i < n; ++i) {
        idx[depth] = i;
        rec(i + 1, depth + 1);
      }
    };
    rec(0, 0);

    IaSelectDiversifier algo;
    DiversifyParams params;
    params.k = k;
    auto picks = algo.Select(ri.input, ri.utilities, params);
    double achieved =
        IaSelectDiversifier::Objective(ri.input, ri.utilities, picks);
    EXPECT_GE(achieved, (1.0 - 1.0 / M_E) * opt - 1e-9);
    EXPECT_LE(achieved, opt + 1e-9);
  }
}

TEST(IaSelectTest, CoversDominantSpecializationFirst) {
  DiversificationInput input;
  input.query = "q";
  input.candidates.resize(2);
  SpecializationProfile s0, s1;
  s0.probability = 0.9;
  s1.probability = 0.1;
  input.specializations = {s0, s1};
  UtilityMatrix u(2, 2);
  u.Set(0, 1, 0.9);  // candidate 0 serves the rare intent
  u.Set(1, 0, 0.9);  // candidate 1 serves the dominant intent
  IaSelectDiversifier algo;
  DiversifyParams params;
  params.k = 1;
  auto picks = algo.Select(input, u, params);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 1u);
}

// --------------------------------------------------------------------- MMR

TEST(MmrTest, FirstPickIsMostRelevant) {
  util::Rng rng(29);
  RandomInstance ri = MakeRandomInstance(&rng, 15, 3);
  MmrDiversifier algo;
  DiversifyParams params;
  params.k = 3;
  auto picks = algo.Select(ri.input, ri.utilities, params);
  ASSERT_FALSE(picks.empty());
  double max_rel = 0;
  size_t best = 0;
  for (size_t i = 0; i < ri.input.candidates.size(); ++i) {
    if (ri.input.candidates[i].relevance > max_rel) {
      max_rel = ri.input.candidates[i].relevance;
      best = i;
    }
  }
  EXPECT_EQ(picks[0], best);
}

TEST(MmrTest, AvoidsNearDuplicates) {
  DiversificationInput input;
  input.query = "q";
  TermVector a = TermVector::FromTermIds({1, 2, 3});
  TermVector a_dup = TermVector::FromTermIds({1, 2, 3});
  TermVector b = TermVector::FromTermIds({7, 8});
  input.candidates.push_back(Candidate{0, 1.0, a});
  input.candidates.push_back(Candidate{1, 0.95, a_dup});  // near-duplicate
  input.candidates.push_back(Candidate{2, 0.4, b});
  UtilityMatrix u(3, 0);

  MmrDiversifier algo;
  DiversifyParams params;
  params.k = 2;
  params.lambda = 0.7;  // strong diversity pressure
  auto picks = algo.Select(input, u, params);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 2u) << "duplicate of the first pick must be avoided";
}

// ------------------------------------ Select shim vs SelectInto (views)

// The legacy Select signature is a shim over the zero-copy SelectInto;
// both must pick bit-identical selections for every algorithm, and a
// SelectScratch reused across instances of different shapes (growing,
// shrinking) must never leak state between calls.
TEST(SelectIntoTest, ShimMatchesSelectIntoAcrossAlgorithmsAndShapes) {
  util::Rng rng(20260727);
  std::vector<std::unique_ptr<Diversifier>> algos;
  for (const char* name :
       {"optselect", "parallel-optselect", "xquad", "iaselect", "mmr"}) {
    algos.push_back(std::move(MakeDiversifier(name)).value());
  }

  // One scratch and one output buffer reused by every call, across
  // every algorithm — the serving worker's usage pattern.
  SelectScratch scratch;
  std::vector<size_t> picks;
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {40, 5}, {200, 12}, {7, 3}, {120, 8}, {1, 2}, {64, 20}};

  for (const auto& [n, m] : shapes) {
    RandomInstance ri = MakeRandomInstance(&rng, n, m);
    DiversifyParams params;
    params.k = 10;
    params.lambda = 0.15;
    for (const auto& algo : algos) {
      std::vector<size_t> shim =
          algo->Select(ri.input, ri.utilities, params);
      DiversificationView view =
          MakeView(ri.input, ri.utilities, &scratch);
      algo->SelectInto(view, params, &scratch, &picks);
      EXPECT_EQ(shim, picks)
          << algo->name() << " diverged at n=" << n << " m=" << m;
    }
  }
}

// A view carrying a precomputed weighted block and specialization order
// (what a compiled query plan provides) must select identically to the
// same view without them.
TEST(SelectIntoTest, PrecomputedBlocksMatchOnTheFlyComputation) {
  util::Rng rng(7);
  RandomInstance ri = MakeRandomInstance(&rng, 150, 9);
  DiversifyParams params;
  params.k = 10;

  SelectScratch scratch;
  DiversificationView view = MakeView(ri.input, ri.utilities, &scratch);

  std::vector<double> probs;
  for (const auto& sp : ri.input.specializations) {
    probs.push_back(sp.probability);
  }
  std::vector<double> weighted(view.num_candidates);
  for (size_t i = 0; i < view.num_candidates; ++i) {
    weighted[i] = ri.utilities.WeightedRowSum(i, probs.data());
  }
  std::vector<uint32_t> order(view.num_specializations);
  for (size_t j = 0; j < order.size(); ++j) {
    order[j] = static_cast<uint32_t>(j);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (probs[a] != probs[b]) return probs[a] > probs[b];
    return a < b;
  });

  DiversificationView compiled = view;
  compiled.weighted = weighted.data();
  compiled.spec_order = order.data();

  OptSelectDiversifier optselect;
  ParallelOptSelectDiversifier parallel(4);
  SelectScratch scratch2;
  std::vector<size_t> plain, fast;
  for (const Diversifier* algo :
       std::initializer_list<const Diversifier*>{&optselect, &parallel}) {
    algo->SelectInto(view, params, &scratch, &plain);
    algo->SelectInto(compiled, params, &scratch2, &fast);
    EXPECT_EQ(plain, fast) << algo->name();
  }
}

}  // namespace
}  // namespace core
}  // namespace optselect
