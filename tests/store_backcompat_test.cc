// Golden-file backward-compatibility tests for the store.bin formats.
//
// tests/data/ holds tiny checked-in fixtures — store_v1.bin through
// store_v4.bin — written by tools/make_store_fixtures.cc with identical
// hand-chosen mined content in each of the four on-disk layouts the
// loader supports. Loading real frozen bytes replaces the hand-crafted
// in-test byte writers the v1/v2 tests used to carry, and catches what
// those couldn't: an accidental change to the *writer* (Save must
// byte-reproduce the v4 fixture, SaveLegacyV3 the v3 one) or to the
// loader's handling of bytes produced by older releases, not by this
// build.
//
// "Upgrade on load" is exercised two ways: store::BuildSnapshot's plan
// adoption (applying the v3 entries as a delta onto a loaded v1/v2 base
// must yield entries bit-identical to the v3 fixture's), and the
// upgrade-on-save path (loading any older format and calling Save must
// byte-reproduce the v4 fixture — the v4 writer is deterministic and
// the loaded content is bit-identical across formats).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/diversification_store.h"
#include "store/mapped_store.h"
#include "store/store_snapshot.h"
#include "util/hash.h"

namespace optselect {
namespace store {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(OPTSELECT_TEST_DATA_DIR) + "/" + name;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path
                  << " (regenerate with optselect_make_fixtures)";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

DiversificationStore LoadFixture(const std::string& name) {
  auto loaded = DiversificationStore::Load(FixturePath(name));
  EXPECT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
  return loaded.ok() ? std::move(loaded).value() : DiversificationStore();
}

/// The golden mined content — literal mirror of
/// tools/make_store_fixtures.cc's GoldenEntries().
void ExpectGoldenContent(const DiversificationStore& store,
                         const std::string& label) {
  EXPECT_EQ(store.size(), 2u) << label;

  const StoredEntry* jaguar = store.Find("jaguar");
  ASSERT_NE(jaguar, nullptr) << label;
  ASSERT_EQ(jaguar->specializations.size(), 2u) << label;
  EXPECT_EQ(jaguar->specializations[0].query, "jaguar car");
  EXPECT_EQ(jaguar->specializations[0].probability, 0.6);
  ASSERT_EQ(jaguar->specializations[0].surrogates.size(), 1u);
  EXPECT_EQ(jaguar->specializations[0].surrogates[0].entries(),
            (std::vector<text::TermVector::Entry>{{42, 1.5}}));
  EXPECT_EQ(jaguar->specializations[1].query, "jaguar cat");
  EXPECT_EQ(jaguar->specializations[1].probability, 0.4);
  EXPECT_TRUE(jaguar->specializations[1].surrogates.empty());

  const StoredEntry* apple = store.Find("apple");
  ASSERT_NE(apple, nullptr) << label;
  ASSERT_EQ(apple->specializations.size(), 3u) << label;
  EXPECT_EQ(apple->specializations[0].query, "apple iphone");
  EXPECT_EQ(apple->specializations[0].probability, 0.5);
  ASSERT_EQ(apple->specializations[0].surrogates.size(), 1u);
  EXPECT_EQ(apple->specializations[0].surrogates[0].entries(),
            (std::vector<text::TermVector::Entry>{{7, 0.25}, {9, 1.0}}));
  EXPECT_EQ(apple->specializations[1].query, "apple fruit");
  EXPECT_EQ(apple->specializations[1].probability, 0.3);
  EXPECT_EQ(apple->specializations[2].query, "apple records");
  EXPECT_EQ(apple->specializations[2].probability, 0.2);
  EXPECT_TRUE(apple->plan.empty()) << label << ": only jaguar has a plan";
}

/// Exact plan-block equality — "bit-identical" for compiled plans.
void ExpectPlansEqual(const QueryPlan& a, const QueryPlan& b,
                      const std::string& label) {
  EXPECT_EQ(a.num_candidates_requested, b.num_candidates_requested) << label;
  EXPECT_EQ(a.threshold_c, b.threshold_c) << label;
  EXPECT_EQ(a.docs, b.docs) << label;
  EXPECT_EQ(a.relevance, b.relevance) << label;
  EXPECT_EQ(a.probability, b.probability) << label;
  EXPECT_EQ(a.spec_order, b.spec_order) << label;
  EXPECT_EQ(a.utilities, b.utilities) << label;
  EXPECT_EQ(a.weighted, b.weighted) << label;
}

TEST(StoreBackcompatTest, AllFourFormatsLoadTheGoldenContent) {
  DiversificationStore v1 = LoadFixture("store_v1.bin");
  DiversificationStore v2 = LoadFixture("store_v2.bin");
  DiversificationStore v3 = LoadFixture("store_v3.bin");
  DiversificationStore v4 = LoadFixture("store_v4.bin");

  // Pre-versioning files load as content version 0; v2+ carry it.
  EXPECT_EQ(v1.version(), 0u);
  EXPECT_EQ(v2.version(), 13u);
  EXPECT_EQ(v3.version(), 13u);
  EXPECT_EQ(v4.version(), 13u);

  ExpectGoldenContent(v1, "v1");
  ExpectGoldenContent(v2, "v2");
  ExpectGoldenContent(v3, "v3");
  ExpectGoldenContent(v4, "v4");
  for (const auto& [key, entry] : v1.entries()) {
    EXPECT_TRUE(StoredEntriesEqual(entry, *v2.Find(key))) << key;
    EXPECT_TRUE(StoredEntriesEqual(entry, *v3.Find(key))) << key;
    EXPECT_TRUE(StoredEntriesEqual(entry, *v4.Find(key))) << key;
  }

  // Plans exist only from v3 on; v4 must carry v3's plan bit-for-bit.
  EXPECT_TRUE(v1.Find("jaguar")->plan.empty());
  EXPECT_TRUE(v2.Find("jaguar")->plan.empty());
  ASSERT_FALSE(v4.Find("jaguar")->plan.empty());
  ExpectPlansEqual(v4.Find("jaguar")->plan, v3.Find("jaguar")->plan,
                   "v4 vs v3 plan");
  const QueryPlan& plan = v3.Find("jaguar")->plan;
  ASSERT_FALSE(plan.empty());
  EXPECT_TRUE(plan.SizesConsistent());
  EXPECT_EQ(plan.num_candidates_requested, 200u);
  EXPECT_EQ(plan.threshold_c, 0.25);
  EXPECT_EQ(plan.docs, (std::vector<DocId>{5, 1, 9}));
  EXPECT_EQ(plan.relevance, (std::vector<double>{1.0, 0.75, 0.5}));
  EXPECT_EQ(plan.probability, (std::vector<double>{0.6, 0.4}));
  EXPECT_EQ(plan.spec_order, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(plan.utilities,
            (std::vector<double>{0.5, 0.0, 0.0, 0.25, 0.125, 0.125}));
  // The λ-independent sums, in the compiler's accumulation order.
  std::vector<double> weighted;
  for (size_t i = 0; i < 3; ++i) {
    double w = 0.0;
    for (size_t j = 0; j < 2; ++j) {
      w += plan.probability[j] * plan.utilities[i * 2 + j];
    }
    weighted.push_back(w);
  }
  EXPECT_EQ(plan.weighted, weighted);
}

TEST(StoreBackcompatTest, PlanUpgradeOnLoadIsBitIdenticalAcrossFormats) {
  DiversificationStore v3 = LoadFixture("store_v3.bin");

  // Upgrade a loaded v1 and a loaded v2 base with the v3 entries as a
  // delta: content-identical upserts are skipped, but the compiled plan
  // is adopted where the base had none — the free v2 → v3 migration.
  for (const char* fixture : {"store_v1.bin", "store_v2.bin"}) {
    std::shared_ptr<const StoreSnapshot> base =
        StoreSnapshot::Own(LoadFixture(fixture));
    StoreDelta delta;
    for (const auto& [key, entry] : v3.entries()) {
      delta.upserts.push_back(entry);
    }
    SnapshotBuildResult built = BuildSnapshot(base.get(), delta);
    // Mined content did not change, so no cached ranking is at risk.
    EXPECT_TRUE(built.changed_keys.empty()) << fixture;
    EXPECT_EQ(built.unchanged_skipped, 2u) << fixture;

    const DiversificationStore& upgraded = built.snapshot->store();
    EXPECT_EQ(upgraded.size(), v3.size()) << fixture;
    for (const auto& [key, entry] : v3.entries()) {
      const StoredEntry* up = upgraded.Find(key);
      ASSERT_NE(up, nullptr) << fixture << " " << key;
      EXPECT_TRUE(StoredEntriesEqual(*up, entry)) << fixture << " " << key;
      EXPECT_EQ(up->plan.empty(), entry.plan.empty())
          << fixture << " " << key;
      if (!entry.plan.empty()) {
        ExpectPlansEqual(up->plan, entry.plan,
                         std::string(fixture) + " " + key);
      }
    }
  }
}

TEST(StoreBackcompatTest, SaveLegacyV3ByteReproducesTheV3Fixture) {
  // Legacy-format freeze: the v3 writer is kept only for fixtures and
  // tests, and must never drift. A diff here means SaveLegacyV3
  // changed — it must not; it is frozen.
  DiversificationStore v3 = LoadFixture("store_v3.bin");
  std::string path = ::testing::TempDir() + "/store_v3_resave.bin";
  ASSERT_TRUE(v3.SaveLegacyV3(path).ok());
  std::string golden = ReadBytes(FixturePath("store_v3.bin"));
  std::string resaved = ReadBytes(path);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(resaved.size(), golden.size());
  EXPECT_TRUE(resaved == golden)
      << "SaveLegacyV3() no longer reproduces the frozen v3 layout";
  std::remove(path.c_str());
}

TEST(StoreBackcompatTest, SaveByteReproducesTheV4Fixture) {
  // Current-format freeze: load the v4 fixture, save it again, and the
  // bytes must match exactly (the v4 writer is deterministic — entries
  // in normalized-key order, fixed padding). A diff here means the
  // writer changed — bump the format version, add a new fixture, keep
  // loading the old ones.
  DiversificationStore v4 = LoadFixture("store_v4.bin");
  std::string path = ::testing::TempDir() + "/store_v4_resave.bin";
  ASSERT_TRUE(v4.Save(path).ok());
  std::string golden = ReadBytes(FixturePath("store_v4.bin"));
  std::string resaved = ReadBytes(path);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(resaved.size(), golden.size());
  EXPECT_TRUE(resaved == golden)
      << "Save() no longer reproduces the frozen v4 layout";
  std::remove(path.c_str());
}

TEST(StoreBackcompatTest, OlderFormatsUpgradeToTheV4BytesOnSave) {
  // Upgrade-on-save: loading any older format and saving must produce
  // the exact v4 fixture bytes — same content, same version, same
  // deterministic layout. (v1 differs: it loads with version 0, so its
  // upgrade is byte-identical only after restamping the version.)
  std::string golden = ReadBytes(FixturePath("store_v4.bin"));
  ASSERT_FALSE(golden.empty());
  for (const char* fixture :
       {"store_v1.bin", "store_v2.bin", "store_v3.bin"}) {
    DiversificationStore loaded = LoadFixture(fixture);
    loaded.set_version(13);  // v1 loads as 0; v2/v3 already carry 13
    if (loaded.Find("jaguar")->plan.empty()) {
      // v1/v2 entries have no plan, so their v4 bytes legitimately
      // differ from the plan-carrying fixture; assert only the
      // round-trip (save → load → identical content, plans aside).
      std::string path = ::testing::TempDir() + "/upgrade_roundtrip.bin";
      ASSERT_TRUE(loaded.Save(path).ok()) << fixture;
      auto reloaded = DiversificationStore::Load(path);
      ASSERT_TRUE(reloaded.ok()) << fixture;
      EXPECT_EQ(reloaded.value().version(), 13u) << fixture;
      for (const auto& [key, entry] : loaded.entries()) {
        const StoredEntry* re = reloaded.value().Find(key);
        ASSERT_NE(re, nullptr) << fixture << " " << key;
        EXPECT_TRUE(StoredEntriesEqual(*re, entry)) << fixture << " " << key;
      }
      std::remove(path.c_str());
      continue;
    }
    std::string path = ::testing::TempDir() + "/upgrade_v4.bin";
    ASSERT_TRUE(loaded.Save(path).ok()) << fixture;
    std::string upgraded = ReadBytes(path);
    EXPECT_TRUE(upgraded == golden)
        << fixture << " did not upgrade to the exact v4 bytes";
    std::remove(path.c_str());
  }
}

TEST(StoreBackcompatTest, TruncatedAndCorruptedFixturesAreRejected) {
  std::string golden = ReadBytes(FixturePath("store_v3.bin"));
  ASSERT_GT(golden.size(), 32u);

  std::string dir = ::testing::TempDir();
  {
    std::ofstream out(dir + "/truncated.bin", std::ios::binary);
    out.write(golden.data(),
              static_cast<std::streamsize>(golden.size() / 2));
  }
  EXPECT_FALSE(DiversificationStore::Load(dir + "/truncated.bin").ok());

  std::string flipped = golden;
  flipped[golden.size() / 2] =
      static_cast<char>(flipped[golden.size() / 2] ^ 0x5a);
  {
    std::ofstream out(dir + "/flipped.bin", std::ios::binary);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_FALSE(DiversificationStore::Load(dir + "/flipped.bin").ok())
      << "a flipped byte must fail the checksum";
  std::remove((dir + "/truncated.bin").c_str());
  std::remove((dir + "/flipped.bin").c_str());
}

TEST(StoreBackcompatTest, CorruptedV4FilesAreRejected) {
  std::string golden = ReadBytes(FixturePath("store_v4.bin"));
  ASSERT_GT(golden.size(), 136u);
  std::string dir = ::testing::TempDir();
  auto write = [&](const std::string& name, const std::string& bytes) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto rejects = [&](const std::string& name, const char* why) {
    EXPECT_FALSE(DiversificationStore::Load(dir + "/" + name).ok()) << why;
    EXPECT_FALSE(MappedStoreFile::Map(dir + "/" + name).ok()) << why;
    std::remove((dir + "/" + name).c_str());
  };

  // Truncation at several depths: inside the header, inside the body,
  // and just shy of the full file (file_size check catches all three).
  for (size_t cut : {size_t{32}, golden.size() / 2, golden.size() - 1}) {
    write("v4_truncated.bin", golden.substr(0, cut));
    rejects("v4_truncated.bin", "truncated v4 must be rejected");
  }

  // A flipped byte anywhere in the body fails the body checksum; in the
  // header (past the magic) it fails the header checksum or a field
  // validation.
  for (size_t at : {size_t{8}, size_t{70}, golden.size() - 9}) {
    std::string flipped = golden;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x5a);
    write("v4_flipped.bin", flipped);
    rejects("v4_flipped.bin", "flipped v4 byte must fail a checksum");
  }

  // A header whose directory offset (byte 32) points out of bounds,
  // with both checksums recomputed so only the bounds check can catch
  // it.
  {
    std::string evil = golden;
    uint64_t bad_offset = golden.size() + 4096;
    std::memcpy(&evil[32], &bad_offset, sizeof(bad_offset));
    uint64_t head = util::Fnv1a64(evil.data(), 56);
    std::memcpy(&evil[56], &head, sizeof(head));
    write("v4_bad_dir.bin", evil);
    rejects("v4_bad_dir.bin",
            "out-of-bounds directory offset must be rejected");
  }

  // Wrong endianness tag (byte 8) — a file written on a foreign-endian
  // machine must refuse to map rather than serve garbage.
  {
    std::string evil = golden;
    uint32_t reversed = 0x04030201u;
    std::memcpy(&evil[8], &reversed, sizeof(reversed));
    uint64_t head = util::Fnv1a64(evil.data(), 56);
    std::memcpy(&evil[56], &head, sizeof(head));
    write("v4_endian.bin", evil);
    rejects("v4_endian.bin", "foreign endianness must be rejected");
  }
}

}  // namespace
}  // namespace store
}  // namespace optselect
