// Tests for the synth module: word bank stability and the planted topic
// universe every other synthetic component is derived from.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "synth/topic_universe.h"
#include "synth/word_bank.h"
#include "text/porter_stemmer.h"

namespace optselect {
namespace synth {
namespace {

TEST(WordBankTest, IndexStableWords) {
  EXPECT_EQ(WordBank::Word(0), WordBank::Word(0));
  EXPECT_EQ(WordBank::Word(12345), WordBank::Word(12345));
  EXPECT_NE(WordBank::Word(0), WordBank::Word(1));
}

TEST(WordBankTest, WrappedIndicesStayDistinct) {
  size_t n = WordBank::size();
  EXPECT_NE(WordBank::Word(3), WordBank::Word(3 + n));
  EXPECT_NE(WordBank::Word(3 + n), WordBank::Word(3 + 2 * n));
}

TEST(WordBankTest, ModifierSliceDisjointFromRootSlice) {
  // The first 64 root words and the first 64 modifiers never collide —
  // this is what keeps specialization tokens distinct from topic roots.
  std::set<std::string> roots;
  for (size_t i = 0; i < 64; ++i) roots.insert(WordBank::RootWord(i));
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(roots.count(WordBank::ModifierWord(i)), 0u)
        << WordBank::ModifierWord(i);
  }
}

TEST(WordBankTest, WordsSurviveStemmingDistinctly) {
  // A sample of the bank must not collapse under Porter stemming (the
  // planted vocabulary is chosen to stay separable in the index).
  text::PorterStemmer stemmer;
  std::set<std::string> stems;
  size_t collisions = 0;
  for (size_t i = 0; i < WordBank::size(); ++i) {
    if (!stems.insert(stemmer.Stem(WordBank::Word(i))).second) {
      ++collisions;
    }
  }
  EXPECT_LE(collisions, 3u) << "stem collisions break cluster separation";
}

class TopicUniverseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_topics = 25;
    config_.min_intents = 3;
    config_.max_intents = 8;
    universe_ = GenerateTopicUniverse(config_, 50);
  }
  TopicUniverseConfig config_;
  TopicUniverse universe_;
};

TEST_F(TopicUniverseTest, TopicCountAndIntentRange) {
  ASSERT_EQ(universe_.topics.size(), 25u);
  for (const TopicSpec& t : universe_.topics) {
    EXPECT_GE(t.intents.size(), 3u);
    EXPECT_LE(t.intents.size(), 8u);
  }
  EXPECT_EQ(universe_.noise_queries.size(), 50u);
}

TEST_F(TopicUniverseTest, RootQueriesDistinct) {
  std::set<std::string> roots;
  for (const TopicSpec& t : universe_.topics) {
    EXPECT_TRUE(roots.insert(t.root_query).second) << t.root_query;
  }
}

TEST_F(TopicUniverseTest, SpecializationsExtendTheirRoot) {
  for (const TopicSpec& t : universe_.topics) {
    std::set<std::string> specs;
    for (const SubIntent& si : t.intents) {
      EXPECT_EQ(si.query.rfind(t.root_query + " ", 0), 0u)
          << si.query << " does not extend " << t.root_query;
      EXPECT_TRUE(specs.insert(si.query).second) << "duplicate " << si.query;
      EXPECT_EQ(si.content_words.size(),
                config_.content_words_per_intent);
    }
  }
}

TEST_F(TopicUniverseTest, IntentProbabilitiesSumToOneAndDecrease) {
  for (const TopicSpec& t : universe_.topics) {
    double sum = 0;
    double prev = 2.0;
    for (const SubIntent& si : t.intents) {
      EXPECT_GT(si.probability, 0.0);
      EXPECT_LE(si.probability, prev);
      prev = si.probability;
      sum += si.probability;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(TopicUniverseTest, ContentWordsDisjointFromAllQueries) {
  std::set<std::string> query_tokens;
  for (const TopicSpec& t : universe_.topics) {
    query_tokens.insert(t.root_query);
    for (const SubIntent& si : t.intents) {
      size_t space = si.query.rfind(' ');
      query_tokens.insert(si.query.substr(space + 1));
    }
  }
  for (const TopicSpec& t : universe_.topics) {
    for (const SubIntent& si : t.intents) {
      for (const std::string& w : si.content_words) {
        EXPECT_EQ(query_tokens.count(w), 0u)
            << "content word '" << w << "' collides with a query token";
      }
    }
  }
}

TEST_F(TopicUniverseTest, DeterministicForSeed) {
  TopicUniverse again = GenerateTopicUniverse(config_, 50);
  ASSERT_EQ(again.topics.size(), universe_.topics.size());
  for (size_t t = 0; t < again.topics.size(); ++t) {
    EXPECT_EQ(again.topics[t].root_query, universe_.topics[t].root_query);
    ASSERT_EQ(again.topics[t].intents.size(),
              universe_.topics[t].intents.size());
    for (size_t s = 0; s < again.topics[t].intents.size(); ++s) {
      EXPECT_EQ(again.topics[t].intents[s].query,
                universe_.topics[t].intents[s].query);
      EXPECT_DOUBLE_EQ(again.topics[t].intents[s].probability,
                       universe_.topics[t].intents[s].probability);
    }
  }
  TopicUniverseConfig other = config_;
  other.seed = config_.seed + 1;
  TopicUniverse different = GenerateTopicUniverse(other, 50);
  bool any_diff = false;
  for (size_t t = 0; t < different.topics.size(); ++t) {
    any_diff |= different.topics[t].intents.size() !=
                universe_.topics[t].intents.size();
  }
  EXPECT_TRUE(any_diff) << "different seeds should differ somewhere";
}

TEST_F(TopicUniverseTest, NoiseQueriesDisjointFromTopicQueries) {
  std::set<std::string> topical;
  for (const TopicSpec& t : universe_.topics) {
    topical.insert(t.root_query);
    for (const SubIntent& si : t.intents) topical.insert(si.query);
  }
  for (const std::string& noise : universe_.noise_queries) {
    EXPECT_EQ(topical.count(noise), 0u) << noise;
  }
}

}  // namespace
}  // namespace synth
}  // namespace optselect
