// Failure-injection and fuzz-style robustness tests: random-byte inputs
// through the text pipeline, malformed files through every loader, and
// adversarial parameter values through the algorithms. Nothing here may
// crash, hang, or return out-of-contract values.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/utility.h"
#include "eval/trec_io.h"
#include "querylog/query_log.h"
#include "store/diversification_store.h"
#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace optselect {
namespace {

std::string RandomBytes(util::Rng* rng, size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return s;
}

std::string RandomAsciiWord(util::Rng* rng, size_t max_len) {
  std::string s;
  size_t len = 1 + rng->Uniform(max_len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  return s;
}

// ------------------------------------------------------- Text pipeline

TEST(FuzzTest, TokenizerSurvivesRandomBytes) {
  util::Rng rng(1);
  text::Tokenizer tokenizer;
  for (int round = 0; round < 200; ++round) {
    std::string input = RandomBytes(&rng, rng.Uniform(2000));
    std::vector<std::string> tokens = tokenizer.Tokenize(input);
    for (const std::string& t : tokens) {
      EXPECT_FALSE(t.empty());
      EXPECT_LE(t.size(), tokenizer.options().max_token_length);
      for (char c : t) {
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)));
      }
    }
  }
}

TEST(FuzzTest, StemmerSurvivesRandomWords) {
  // Porter stemming is deterministic and never grows a word, but it is
  // *not* idempotent on arbitrary strings (a known property of the
  // algorithm — e.g. artificial "...ee" endings lose one 'e' per pass);
  // idempotence on real vocabulary is covered in text_test.cc.
  util::Rng rng(2);
  text::PorterStemmer stemmer;
  for (int round = 0; round < 2000; ++round) {
    std::string word = RandomAsciiWord(&rng, 24);
    std::string once = stemmer.Stem(word);
    EXPECT_LE(once.size(), word.size());
    EXPECT_FALSE(once.empty());
    EXPECT_EQ(stemmer.Stem(word), once) << "non-deterministic on " << word;
    // Repeated stemming terminates (strictly shrinking or fixed).
    std::string prev = once;
    for (int pass = 0; pass < 30; ++pass) {
      std::string next = stemmer.Stem(prev);
      ASSERT_LE(next.size(), prev.size());
      if (next == prev) break;
      prev = next;
    }
  }
}

TEST(FuzzTest, AnalyzerSurvivesRandomBytes) {
  util::Rng rng(3);
  text::Analyzer analyzer;
  for (int round = 0; round < 100; ++round) {
    std::string input = RandomBytes(&rng, rng.Uniform(4000));
    std::vector<text::TermId> ids = analyzer.Analyze(input);
    for (text::TermId id : ids) {
      EXPECT_LT(id, analyzer.vocabulary().size());
    }
    // Read-only analysis never grows the vocabulary.
    size_t before = analyzer.vocabulary().size();
    analyzer.AnalyzeReadOnly(RandomBytes(&rng, 500));
    EXPECT_EQ(analyzer.vocabulary().size(), before);
  }
}

// ------------------------------------------------------------ Loaders

class GarbageFileTest : public ::testing::Test {
 protected:
  std::string WriteGarbage(const std::string& name, const std::string& data) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    return path;
  }
};

TEST_F(GarbageFileTest, QueryLogLoaderNeverCrashes) {
  util::Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    std::string path = WriteGarbage(
        "garbage_log.tsv", RandomBytes(&rng, rng.Uniform(3000)));
    auto result = querylog::QueryLog::LoadTsv(path);
    // Either parses (random bytes can form valid lines) or errors; both
    // are acceptable — crashing is not.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
    }
    std::remove(path.c_str());
  }
}

TEST_F(GarbageFileTest, StoreLoaderNeverCrashes) {
  util::Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    std::string blob = "OSDS" + RandomBytes(&rng, rng.Uniform(2000));
    std::string path = WriteGarbage("garbage_store.bin", blob);
    auto result = store::DiversificationStore::Load(path);
    EXPECT_FALSE(result.ok()) << "random bytes must not checksum-validate";
    std::remove(path.c_str());
  }
}

TEST_F(GarbageFileTest, TrecLoadersRejectGarbage) {
  util::Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    std::string path =
        WriteGarbage("garbage_trec.txt", RandomBytes(&rng, 500));
    // Any of: parse error, or (rarely) an accepted parse — never a crash.
    (void)eval::LoadTopics(path);
    (void)eval::LoadQrels(path);
    (void)eval::LoadRun(path);
    std::remove(path.c_str());
  }
}

// --------------------------------------------------- Algorithm contracts

TEST(AdversarialInputTest, AlgorithmsHandleDegenerateUtilities) {
  // All-zero utilities, zero relevance, extreme λ: selections must still
  // be k distinct valid indices.
  core::DiversificationInput input;
  input.query = "q";
  for (int i = 0; i < 20; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    c.relevance = 0.0;
    input.candidates.push_back(c);
  }
  for (int j = 0; j < 3; ++j) {
    core::SpecializationProfile sp;
    sp.probability = 1.0 / 3.0;
    input.specializations.push_back(sp);
  }
  core::UtilityMatrix zeros(20, 3);

  for (const std::string& name : core::AvailableDiversifiers()) {
    auto algo = std::move(core::MakeDiversifier(name)).value();
    for (double lambda : {0.0, 0.5, 1.0}) {
      core::DiversifyParams params;
      params.k = 7;
      params.lambda = lambda;
      auto picks = algo->Select(input, zeros, params);
      EXPECT_EQ(picks.size(), 7u) << name << " λ=" << lambda;
      std::vector<char> seen(20, 0);
      for (size_t i : picks) {
        ASSERT_LT(i, 20u);
        EXPECT_FALSE(seen[i]) << name << " duplicated index";
        seen[i] = 1;
      }
    }
  }
}

TEST(AdversarialInputTest, SingleCandidateSingleSpecialization) {
  core::DiversificationInput input;
  input.query = "q";
  core::Candidate c;
  c.doc = 0;
  c.relevance = 1.0;
  input.candidates.push_back(c);
  core::SpecializationProfile sp;
  sp.probability = 1.0;
  input.specializations.push_back(sp);
  core::UtilityMatrix u(1, 1);
  u.Set(0, 0, 0.5);

  for (const std::string& name : core::AvailableDiversifiers()) {
    auto algo = std::move(core::MakeDiversifier(name)).value();
    core::DiversifyParams params;
    params.k = 10;
    EXPECT_EQ(algo->Select(input, u, params),
              (std::vector<size_t>{0})) << name;
  }
}

TEST(AdversarialInputTest, UtilityComputerHandlesEmptyVectors) {
  core::DiversificationInput input;
  input.query = "q";
  core::Candidate c;
  c.doc = 0;  // empty vector
  input.candidates.push_back(c);
  core::SpecializationProfile sp;
  sp.probability = 1.0;
  sp.results.push_back(text::TermVector());  // empty reference too
  input.specializations.push_back(sp);
  core::UtilityMatrix m = core::UtilityComputer().Compute(input);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(AdversarialInputTest, NegativeThresholdKeepsEverything) {
  text::TermVector d = text::TermVector::FromTermIds({1});
  std::vector<text::TermVector> refs = {text::TermVector::FromTermIds({2})};
  core::UtilityComputer computer(core::UtilityComputer::Options{-1.0});
  // Orthogonal vectors: utility 0, but a negative threshold must not
  // manufacture values.
  EXPECT_DOUBLE_EQ(computer.NormalizedUtility(d, refs), 0.0);
}

}  // namespace
}  // namespace optselect
