// Randomized differential tests against brute-force oracles.
//
// The optimized selection implementations carry real machinery — the
// bounded heaps and quota draining of OptSelect, the incremental
// coverage products of xQuAD and IASelect — any of which could drift
// from the paper's formulas under refactoring. On small instances
// (n <= 12 candidates) that machinery is unnecessary, so each
// algorithm's selection is recomputed here by a deliberately naive
// oracle that applies the paper's objective directly (full sorts, full
// rescans, coverage products from scratch) and the two must agree
// index-for-index, across 500 seeded instances including heavy-tie
// ones. The oracles accumulate in the same floating-point order as the
// optimized code, so agreement is exact, not approximate.
//
// For IASelect the oracle goes further: Diversify(k) under Eq. 4 is
// small enough to solve *optimally* by enumerating all C(n, k) subsets,
// and the greedy selection must score within the (1 − 1/e) submodular
// approximation bound of that brute-force optimum [Nemhauser 1978].
//
// The streaming selector (core/streaming_select.h) claims *bit*
// identity with the materialized OptSelect path — same heaps, same
// quotas, same tie rule — plus an incremental Extend(k → k+Δ) that
// must equal a fresh k+Δ run without re-materializing any candidate.
// Both claims are checked across every one of the 500 instances.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/candidate.h"
#include "core/iaselect.h"
#include "core/optselect.h"
#include "core/streaming_select.h"
#include "core/utility.h"
#include "core/xquad.h"
#include "util/rng.h"

namespace optselect {
namespace core {
namespace {

struct Instance {
  DiversificationInput input;
  UtilityMatrix utilities;
  DiversifyParams params;
};

/// Random instance with n <= 12. Odd trials quantize every value to
/// eighths so exact ties (in relevance, probability, and utility) are
/// common — the regime where tie-breaking bugs live.
Instance MakeInstance(util::Rng* rng, bool quantize) {
  Instance instance;
  const size_t n = 2 + rng->Uniform(11);  // 2..12
  const size_t m = 2 + rng->Uniform(4);   // 2..5
  instance.params.k = 1 + rng->Uniform(n);
  const double lambdas[] = {0.0, 0.15, 0.5, 1.0};
  instance.params.lambda = lambdas[rng->Uniform(4)];

  double norm = 0.0;
  std::vector<double> weights(m);
  for (size_t j = 0; j < m; ++j) {
    weights[j] = quantize ? static_cast<double>(1 + rng->Uniform(4))
                          : rng->UniformDouble() + 0.05;
    norm += weights[j];
  }
  for (size_t j = 0; j < m; ++j) {
    SpecializationProfile profile;
    profile.query = "spec " + std::to_string(j);
    profile.probability = weights[j] / norm;
    instance.input.specializations.push_back(std::move(profile));
  }

  instance.utilities = UtilityMatrix(n, m);
  for (size_t i = 0; i < n; ++i) {
    Candidate candidate;
    candidate.doc = static_cast<DocId>(i);
    candidate.relevance = quantize
                              ? static_cast<double>(rng->Uniform(9)) / 8.0
                              : rng->UniformDouble();
    instance.input.candidates.push_back(std::move(candidate));
    for (size_t j = 0; j < m; ++j) {
      if (rng->Bernoulli(0.4)) continue;  // stays 0: not useful for q′
      double u = quantize ? static_cast<double>(1 + rng->Uniform(8)) / 8.0
                          : rng->UniformDouble();
      instance.utilities.Set(i, j, u);
    }
  }
  return instance;
}

/// Comparator shared by every oracle: overall score descending, original
/// rank ascending — the library's universal tie rule.
struct ByScoreDesc {
  const std::vector<double>& score;
  bool operator()(size_t a, size_t b) const {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  }
};

/// Naive OptSelect: the Section 3.1.3 selection rule with full sorted
/// lists in place of bounded heaps (same quota semantics: a document
/// useful for several specializations consumes each one's quota).
std::vector<size_t> OracleOptSelect(const Instance& instance) {
  const DiversificationInput& input = instance.input;
  const UtilityMatrix& matrix = instance.utilities;
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(instance.params.k, n);
  if (k == 0) return {};

  std::vector<double> overall(n);
  for (size_t i = 0; i < n; ++i) {
    overall[i] = OptSelectDiversifier::OverallUtility(
        input, matrix, i, instance.params.lambda);
  }

  // "the k specializations with the largest probabilities".
  std::vector<size_t> order(m);
  for (size_t j = 0; j < m; ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double pa = input.specializations[a].probability;
    double pb = input.specializations[b].probability;
    if (pa != pb) return pa > pb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);

  std::vector<char> taken(n, 0);
  std::vector<size_t> selected;
  for (size_t j : order) {
    if (selected.size() >= k) break;
    double p = input.specializations[j].probability;
    size_t want = std::max<size_t>(
        static_cast<size_t>(std::floor(static_cast<double>(k) * p)), 1);
    std::vector<size_t> useful;
    for (size_t i = 0; i < n; ++i) {
      if (matrix.At(i, j) > 0.0) useful.push_back(i);
    }
    std::sort(useful.begin(), useful.end(), ByScoreDesc{overall});
    size_t got = 0;
    for (size_t i : useful) {
      if (got >= want || selected.size() >= k) break;
      if (taken[i]) {
        ++got;  // consumes this specialization's quota, added once
        continue;
      }
      taken[i] = 1;
      selected.push_back(i);
      ++got;
    }
  }

  std::vector<size_t> global(n);
  for (size_t i = 0; i < n; ++i) global[i] = i;
  std::sort(global.begin(), global.end(), ByScoreDesc{overall});
  for (size_t i : global) {
    if (selected.size() >= k) break;
    if (taken[i]) continue;
    taken[i] = 1;
    selected.push_back(i);
  }

  std::sort(selected.begin(), selected.end(), ByScoreDesc{overall});
  return selected;
}

/// Naive greedy xQuAD: every step recomputes Eq. 5/6 from scratch over
/// the remaining candidates (coverage products rebuilt in selection
/// order, so the accumulation order matches the incremental code).
std::vector<size_t> OracleXQuad(const Instance& instance) {
  const DiversificationInput& input = instance.input;
  const UtilityMatrix& matrix = instance.utilities;
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(instance.params.k, n);
  const double lambda = instance.params.lambda;

  std::vector<size_t> selected;
  std::vector<char> taken(n, 0);
  for (size_t step = 0; step < k; ++step) {
    std::vector<double> coverage(m, 1.0);
    for (size_t d : selected) {
      for (size_t j = 0; j < m; ++j) {
        coverage[j] *= 1.0 - matrix.At(d, j);
      }
    }
    double best_score = -1.0;
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double diversity = 0.0;
      for (size_t j = 0; j < m; ++j) {
        diversity += input.specializations[j].probability *
                     matrix.At(i, j) * coverage[j];
      }
      double score = (1.0 - lambda) * input.candidates[i].relevance +
                     lambda * diversity;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    taken[best] = 1;
    selected.push_back(best);
  }
  return selected;
}

/// Naive greedy IASelect: per-step marginal gain of Eq. 4, coverage
/// products from scratch.
std::vector<size_t> OracleIaSelect(const Instance& instance) {
  const DiversificationInput& input = instance.input;
  const UtilityMatrix& matrix = instance.utilities;
  const size_t n = input.candidates.size();
  const size_t m = input.specializations.size();
  const size_t k = std::min(instance.params.k, n);

  std::vector<size_t> selected;
  std::vector<char> taken(n, 0);
  for (size_t step = 0; step < k; ++step) {
    std::vector<double> coverage(m, 1.0);
    for (size_t d : selected) {
      for (size_t j = 0; j < m; ++j) {
        coverage[j] *= 1.0 - matrix.At(d, j);
      }
    }
    double best_gain = -1.0;
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < m; ++j) {
        gain += input.specializations[j].probability * coverage[j] *
                matrix.At(i, j);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n) break;
    taken[best] = 1;
    selected.push_back(best);
  }
  return selected;
}

/// Streams an instance through a StreamingTopK with reserve `max_k`,
/// driving the pruning bound exactly like the serving cold-path scan
/// (CanPrune → Skip, otherwise Push with the full utility row).
void StreamInstance(const Instance& instance, size_t max_k,
                    StreamingTopK* stream) {
  const size_t n = instance.input.candidates.size();
  const size_t m = instance.input.specializations.size();
  std::vector<double> probs(m);
  for (size_t j = 0; j < m; ++j) {
    probs[j] = instance.input.specializations[j].probability;
  }
  stream->Begin(probs.data(), m, max_k, instance.params.lambda);
  for (size_t i = 0; i < n; ++i) {
    const double rel = instance.input.candidates[i].relevance;
    if (stream->CanPrune(rel)) {
      stream->Skip();
      continue;
    }
    stream->Push(i, rel, instance.utilities.data() + i * m);
  }
}

/// Brute-force optimum of the Eq. 4 objective over all C(n, k) subsets
/// (n <= 12 ⇒ at most 4096 masks).
double BruteForceIaOptimum(const Instance& instance) {
  const size_t n = instance.input.candidates.size();
  const size_t k = std::min(instance.params.k, n);
  double best = 0.0;
  std::vector<size_t> subset;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != k) continue;
    subset.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    best = std::max(best, IaSelectDiversifier::Objective(
                              instance.input, instance.utilities, subset));
  }
  return best;
}

TEST(OracleDiffTest, FiveHundredSeededInstancesMatchTheOracles) {
  util::Rng rng(20260727);
  OptSelectDiversifier optselect;
  StreamingDiversifier streaming;
  XQuadDiversifier xquad;
  IaSelectDiversifier iaselect;
  const double kSubmodularBound = 1.0 - 1.0 / std::exp(1.0);

  for (int trial = 0; trial < 500; ++trial) {
    Instance instance = MakeInstance(&rng, /*quantize=*/trial % 2 == 1);
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                 std::to_string(instance.input.candidates.size()) + " m=" +
                 std::to_string(instance.input.specializations.size()) +
                 " k=" + std::to_string(instance.params.k) +
                 " lambda=" + std::to_string(instance.params.lambda));

    std::vector<size_t> got_opt = optselect.Select(
        instance.input, instance.utilities, instance.params);
    EXPECT_EQ(got_opt, OracleOptSelect(instance));

    // Streaming selection must equal the materialized path *bit*-
    // identically (not just the oracle's semantics): same candidates,
    // same order, pruning and all.
    std::vector<size_t> got_stream = streaming.Select(
        instance.input, instance.utilities, instance.params);
    EXPECT_EQ(got_stream, got_opt) << "streaming diverged from OptSelect";

    // Extend: a stream reserved at k+Δ answers Finalize(k) identically
    // to the fresh k run, then Finalize(k+Δ) identically to a fresh
    // k+Δ run — with zero new candidate materializations in between.
    const size_t delta = 1 + trial % 4;
    StreamingTopK stream;
    StreamInstance(instance, instance.params.k + delta, &stream);
    const size_t pushed_before = stream.pushed();
    std::vector<size_t> at_k;
    std::vector<size_t> extended;
    stream.Finalize(instance.params.k, &at_k);
    stream.Finalize(instance.params.k + delta, &extended);
    EXPECT_EQ(at_k, got_opt) << "reserved stream diverged at k";
    EXPECT_EQ(stream.pushed(), pushed_before)
        << "Extend re-materialized candidates";
    DiversifyParams wider = instance.params;
    wider.k += delta;
    EXPECT_EQ(extended,
              optselect.Select(instance.input, instance.utilities, wider))
        << "Extend diverged from a fresh k+delta run";

    std::vector<size_t> got_xquad =
        xquad.Select(instance.input, instance.utilities, instance.params);
    EXPECT_EQ(got_xquad, OracleXQuad(instance));

    std::vector<size_t> got_ia = iaselect.Select(
        instance.input, instance.utilities, instance.params);
    EXPECT_EQ(got_ia, OracleIaSelect(instance));

    // The paper's Eq. 4 objective, solved exactly: greedy must land
    // within the submodular guarantee of the brute-force optimum.
    double optimum = BruteForceIaOptimum(instance);
    double achieved = IaSelectDiversifier::Objective(
        instance.input, instance.utilities, got_ia);
    EXPECT_GE(achieved, kSubmodularBound * optimum - 1e-12)
        << "greedy " << achieved << " vs brute-force optimum " << optimum;
    EXPECT_LE(achieved, optimum + 1e-12)
        << "greedy cannot beat the enumerated optimum";
  }
}

/// Degenerate shapes the random sweep may miss.
TEST(OracleDiffTest, DegenerateInstancesStillAgree) {
  OptSelectDiversifier optselect;
  StreamingDiversifier streaming;
  XQuadDiversifier xquad;
  IaSelectDiversifier iaselect;

  // All-zero utilities, all-equal relevance: pure tie-breaking.
  Instance instance;
  instance.params.k = 3;
  instance.params.lambda = 0.15;
  for (size_t j = 0; j < 3; ++j) {
    SpecializationProfile profile;
    profile.query = "spec " + std::to_string(j);
    profile.probability = 1.0 / 3.0;
    instance.input.specializations.push_back(std::move(profile));
  }
  for (size_t i = 0; i < 6; ++i) {
    Candidate candidate;
    candidate.doc = static_cast<DocId>(i);
    candidate.relevance = 0.5;
    instance.input.candidates.push_back(std::move(candidate));
  }
  instance.utilities = UtilityMatrix(6, 3);

  EXPECT_EQ(optselect.Select(instance.input, instance.utilities,
                             instance.params),
            OracleOptSelect(instance));
  EXPECT_EQ(streaming.Select(instance.input, instance.utilities,
                             instance.params),
            OracleOptSelect(instance));
  EXPECT_EQ(xquad.Select(instance.input, instance.utilities,
                         instance.params),
            OracleXQuad(instance));
  EXPECT_EQ(iaselect.Select(instance.input, instance.utilities,
                            instance.params),
            OracleIaSelect(instance));

  // k >= n: everything is selected, order still matters.
  instance.params.k = 12;
  EXPECT_EQ(optselect.Select(instance.input, instance.utilities,
                             instance.params),
            OracleOptSelect(instance));
  EXPECT_EQ(streaming.Select(instance.input, instance.utilities,
                             instance.params),
            OracleOptSelect(instance));
}

}  // namespace
}  // namespace core
}  // namespace optselect
