// Tests for the bench JSON emitter: RFC 8259 string escaping, rejection
// of non-finite values (which have no JSON encoding and would break the
// CI regression gate's parser), and the emitted document shape.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "bench_util.h"

namespace optselect {
namespace bench {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(BenchJsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  BenchJsonWriter json("escape\"me");
  json.Add("tab\there \"quoted\" back\\slash\nnewline\x01" "etx", {}, 1.0,
           2.0);
  std::string doc = json.ToJson();

  EXPECT_NE(doc.find("\"bench\": \"escape\\\"me\""), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("tab\\there \\\"quoted\\\" back\\\\slash\\n"
                     "newline\\u0001etx"),
            std::string::npos)
      << doc;
  // No raw control bytes may survive into the document.
  for (char c : doc) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control byte 0x" << std::hex
        << static_cast<int>(static_cast<unsigned char>(c));
  }
}

TEST(BenchJsonWriterTest, RejectsNonFiniteValues) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  {
    BenchJsonWriter json("nan_wall");
    json.Add("r", {}, kNan, 1.0);
    EXPECT_FALSE(json.Validate().ok());
    EXPECT_FALSE(json.WriteFile(::testing::TempDir()).ok());
  }
  {
    BenchJsonWriter json("inf_qps");
    json.Add("r", {}, 1.0, kInf);
    EXPECT_FALSE(json.Validate().ok());
  }
  {
    BenchJsonWriter json("nan_param");
    json.Add("r", {{"p99_ms", kNan}}, 1.0, 1.0);
    util::Status status = json.Validate();
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("p99_ms"), std::string::npos)
        << status.ToString() << " should name the offending param";
  }
  {
    // A rejected WriteFile must not leave a file behind.
    BenchJsonWriter json("rejected");
    json.Add("r", {}, kInf, 1.0);
    std::string path = ::testing::TempDir() + "/BENCH_rejected.json";
    std::remove(path.c_str());
    EXPECT_FALSE(json.WriteFile(::testing::TempDir()).ok());
    std::ifstream in(path);
    EXPECT_FALSE(in.good()) << "refused write must not create " << path;
  }
  // Direct ToJson still yields valid JSON: null, never bare nan/inf.
  BenchJsonWriter json("tojson");
  json.Add("r", {{"x", kNan}}, kInf, -kInf);
  std::string doc = json.ToJson();
  EXPECT_EQ(doc.find("nan"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wall_ms\": null"), std::string::npos) << doc;
}

TEST(BenchJsonWriterTest, WritesTheDocumentedShape) {
  BenchJsonWriter json("shape");
  json.Add("workers=4", {{"workers", 4.0}, {"p99_ms", 1.25}}, 812.5,
           1231.0);
  json.Add("empty_params", {}, 1.0, 2.0);
  ASSERT_TRUE(json.Validate().ok());
  ASSERT_TRUE(json.WriteFile(::testing::TempDir()).ok());

  std::string path = ::testing::TempDir() + "/BENCH_shape.json";
  std::string doc = Slurp(path);
  EXPECT_EQ(doc, json.ToJson());
  EXPECT_NE(doc.find("\"bench\": \"shape\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"workers=4\""), std::string::npos);
  EXPECT_NE(doc.find("\"wall_ms\": 812.5"), std::string::npos);
  EXPECT_NE(doc.find("\"qps\": 1231"), std::string::npos);
  EXPECT_NE(doc.find("\"workers\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"p99_ms\": 1.25"), std::string::npos);
  EXPECT_NE(doc.find("\"params\": {}"), std::string::npos)
      << "empty params must still be an object: " << doc;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace optselect
