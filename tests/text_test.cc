// Unit tests for the text module: tokenizer, Porter stemmer (published
// vectors), stopwords, vocabulary, term vectors, analyzer pipeline.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace optselect {
namespace text {
namespace {

// --------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Apple-Pie, 42!"),
            (std::vector<std::string>{"apple", "pie", "42"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... ---").empty());
}

TEST(TokenizerTest, MinLengthFilter) {
  Tokenizer::Options opt;
  opt.min_token_length = 2;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("a bb c ddd"),
            (std::vector<std::string>{"bb", "ddd"}));
}

TEST(TokenizerTest, MaxLengthTruncation) {
  Tokenizer::Options opt;
  opt.max_token_length = 4;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("abcdefgh"), (std::vector<std::string>{"abcd"}));
}

TEST(TokenizerTest, KeepsDigitsInsideTokens) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("os x 10 7"),
            (std::vector<std::string>{"os", "x", "10", "7"}));
}

// ----------------------------------------------------------- PorterStemmer

struct StemCase {
  const char* in;
  const char* out;
};

class PorterVectorTest : public ::testing::TestWithParam<StemCase> {};

// Classic vectors from Porter's paper and the reference implementation's
// sample vocabulary.
INSTANTIATE_TEST_SUITE_P(
    KnownVectors, PorterVectorTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication",
        "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"}, StemCase{"triplicate",
        "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti",
        "electr"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable",
        "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous",
        "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

TEST_P(PorterVectorTest, StemsAsPublished) {
  PorterStemmer stemmer;
  const StemCase& c = GetParam();
  EXPECT_EQ(stemmer.Stem(c.in), c.out) << "input: " << c.in;
}

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("a"), "a");
  EXPECT_EQ(s.Stem("is"), "is");
  EXPECT_EQ(s.Stem("ox"), "ox");
}

TEST(PorterStemmerTest, Idempotent) {
  PorterStemmer s;
  for (const char* w :
       {"running", "relational", "happiness", "leopard", "pictures",
        "diversification", "probabilities", "utilities"}) {
    std::string once = s.Stem(w);
    EXPECT_EQ(s.Stem(once), once) << "word: " << w;
  }
}

TEST(PorterStemmerTest, CollapsesInflectionsTogether) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("connect"), s.Stem("connected"));
  EXPECT_EQ(s.Stem("connect"), s.Stem("connecting"));
  EXPECT_EQ(s.Stem("connect"), s.Stem("connection"));
  EXPECT_EQ(s.Stem("connect"), s.Stem("connections"));
}

// ------------------------------------------------------------- Stopwords

TEST(StopwordsTest, ContainsCommonFunctionWords) {
  StopwordSet sw;
  for (const char* w : {"the", "a", "of", "and", "is", "to", "in"}) {
    EXPECT_TRUE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, DoesNotContainContentWords) {
  StopwordSet sw;
  for (const char* w : {"leopard", "apple", "tank", "diversification"}) {
    EXPECT_FALSE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, CustomList) {
  std::unordered_set<std::string_view> words{"foo"};
  StopwordSet sw(std::move(words));
  EXPECT_TRUE(sw.Contains("foo"));
  EXPECT_FALSE(sw.Contains("the"));
  EXPECT_EQ(sw.size(), 1u);
}

// ------------------------------------------------------------ Vocabulary

TEST(VocabularyTest, GetOrAddIsStable) {
  Vocabulary v;
  TermId a = v.GetOrAdd("apple");
  TermId b = v.GetOrAdd("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.GetOrAdd("apple"), a);
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, LookupMissing) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("ghost"), kInvalidTermId);
  v.GetOrAdd("real");
  EXPECT_NE(v.Lookup("real"), kInvalidTermId);
}

TEST(VocabularyTest, TermRoundTrip) {
  Vocabulary v;
  TermId id = v.GetOrAdd("leopard");
  EXPECT_EQ(v.term(id), "leopard");
}

// ------------------------------------------------------------ TermVector

TEST(TermVectorTest, FromEntriesMergesDuplicates) {
  TermVector tv = TermVector::FromEntries({{3, 1.0}, {1, 2.0}, {3, 4.0}});
  EXPECT_EQ(tv.size(), 2u);
  EXPECT_DOUBLE_EQ(tv.WeightOf(3), 5.0);
  EXPECT_DOUBLE_EQ(tv.WeightOf(1), 2.0);
  EXPECT_DOUBLE_EQ(tv.WeightOf(99), 0.0);
}

TEST(TermVectorTest, DropsZeroWeights) {
  TermVector tv = TermVector::FromEntries({{1, 0.0}, {2, 3.0}});
  EXPECT_EQ(tv.size(), 1u);
  TermVector cancel = TermVector::FromEntries({{5, 2.0}, {5, -2.0}});
  EXPECT_TRUE(cancel.empty());
}

TEST(TermVectorTest, NormMatchesEuclidean) {
  TermVector tv = TermVector::FromEntries({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(tv.norm(), 5.0);
}

TEST(TermVectorTest, CosineIdenticalIsOne) {
  TermVector a = TermVector::FromTermIds({1, 2, 2, 3});
  EXPECT_NEAR(a.Cosine(a), 1.0, 1e-12);
  EXPECT_NEAR(a.CosineDistance(a), 0.0, 1e-12);
}

TEST(TermVectorTest, CosineOrthogonalIsZero) {
  TermVector a = TermVector::FromTermIds({1, 2});
  TermVector b = TermVector::FromTermIds({3, 4});
  EXPECT_DOUBLE_EQ(a.Cosine(b), 0.0);
  EXPECT_DOUBLE_EQ(a.CosineDistance(b), 1.0);
}

TEST(TermVectorTest, CosineSymmetric) {
  TermVector a = TermVector::FromEntries({{1, 2.0}, {2, 1.0}, {7, 0.5}});
  TermVector b = TermVector::FromEntries({{2, 3.0}, {7, 1.0}, {9, 2.0}});
  EXPECT_DOUBLE_EQ(a.Cosine(b), b.Cosine(a));
}

TEST(TermVectorTest, CosineHandComputed) {
  // a = (1,1), b = (1,0) over terms {5,6} → cos = 1/√2.
  TermVector a = TermVector::FromEntries({{5, 1.0}, {6, 1.0}});
  TermVector b = TermVector::FromEntries({{5, 1.0}});
  EXPECT_NEAR(a.Cosine(b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(TermVectorTest, EmptyVectorCosineZero) {
  TermVector empty;
  TermVector a = TermVector::FromTermIds({1});
  EXPECT_DOUBLE_EQ(empty.Cosine(a), 0.0);
  EXPECT_DOUBLE_EQ(a.Cosine(empty), 0.0);
  EXPECT_DOUBLE_EQ(empty.Cosine(empty), 0.0);
}

TEST(TermVectorTest, DotLinearMerge) {
  TermVector a = TermVector::FromEntries({{1, 2.0}, {3, 1.0}, {5, 4.0}});
  TermVector b = TermVector::FromEntries({{3, 3.0}, {5, 0.5}, {7, 9.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0 * 3.0 + 4.0 * 0.5);
}

// -------------------------------------------------------------- Analyzer

TEST(AnalyzerTest, PipelineStopsAndStems) {
  Analyzer a;
  std::vector<std::string> toks =
      a.AnalyzeToStrings("The leopards are running in the canyons");
  EXPECT_EQ(toks, (std::vector<std::string>{"leopard", "run", "canyon"}));
}

TEST(AnalyzerTest, AnalyzeInternsTerms) {
  Analyzer a;
  std::vector<TermId> ids = a.Analyze("leopard tank");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(a.vocabulary().term(ids[0]), "leopard");
  EXPECT_EQ(a.vocabulary().term(ids[1]), "tank");
}

TEST(AnalyzerTest, ReadOnlyDropsUnknownTerms) {
  Analyzer a;
  a.Analyze("leopard");
  std::vector<TermId> ids = a.AnalyzeReadOnly("leopard unicorn");
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(a.vocabulary().Lookup("unicorn"), kInvalidTermId);
}

TEST(AnalyzerTest, SameSurfaceFormsShareIds) {
  Analyzer a;
  std::vector<TermId> x = a.Analyze("connected");
  std::vector<TermId> y = a.Analyze("connection");
  ASSERT_EQ(x.size(), 1u);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(x[0], y[0]);
}

TEST(AnalyzerTest, OptionsDisableStemmingAndStopping) {
  Analyzer::Options opt;
  opt.remove_stopwords = false;
  opt.stem = false;
  Analyzer a(opt);
  std::vector<std::string> toks = a.AnalyzeToStrings("the running dogs");
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "running", "dogs"}));
}

TEST(AnalyzerTest, AnalyzeToVectorCountsTf) {
  Analyzer a;
  TermVector tv = a.AnalyzeToVector("leopard leopard tank");
  TermId leopard = a.vocabulary().Lookup("leopard");
  TermId tank = a.vocabulary().Lookup("tank");
  EXPECT_DOUBLE_EQ(tv.WeightOf(leopard), 2.0);
  EXPECT_DOUBLE_EQ(tv.WeightOf(tank), 1.0);
}

}  // namespace
}  // namespace text
}  // namespace optselect
