// Unit tests for the corpus module: document store, TREC topics, qrels,
// and the synthetic corpus generator.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/document_store.h"
#include "corpus/qrels.h"
#include "corpus/synthetic_corpus.h"
#include "corpus/trec_topics.h"
#include "synth/topic_universe.h"
#include "util/strings.h"

namespace optselect {
namespace corpus {
namespace {

// ------------------------------------------------------------ DocumentStore

TEST(DocumentStoreTest, AddAssignsDenseIds) {
  DocumentStore store;
  DocId a = store.Add("http://x/a", "title a", "body a");
  DocId b = store.Add("http://x/b", "title b", "body b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(a).title, "title a");
  EXPECT_EQ(store.Get(b).url, "http://x/b");
  EXPECT_TRUE(store.Contains(1));
  EXPECT_FALSE(store.Contains(2));
}

TEST(DocumentStoreTest, Iteration) {
  DocumentStore store;
  store.Add("u1", "t1", "b1");
  store.Add("u2", "t2", "b2");
  size_t n = 0;
  for (const Document& d : store) {
    EXPECT_EQ(d.id, n);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

// ---------------------------------------------------------------- TopicSet

TEST(TopicSetTest, FindByQuery) {
  TopicSet set;
  TrecTopic t;
  t.id = 1;
  t.query = "obama family tree";
  set.Add(t);
  EXPECT_NE(set.FindByQuery("obama family tree"), nullptr);
  EXPECT_EQ(set.FindByQuery("nothing"), nullptr);
}

// ------------------------------------------------------------------- Qrels

TEST(QrelsTest, AddAndLookup) {
  Qrels q;
  q.Add(1, 0, 100, 2);
  q.Add(1, 1, 100, 1);
  q.Add(1, 0, 200, 1);
  EXPECT_EQ(q.Grade(1, 0, 100), 2);
  EXPECT_EQ(q.Grade(1, 1, 100), 1);
  EXPECT_EQ(q.Grade(1, 0, 999), 0);
  EXPECT_TRUE(q.Relevant(1, 0, 200));
  EXPECT_FALSE(q.Relevant(2, 0, 100));
  EXPECT_EQ(q.size(), 3u);
}

TEST(QrelsTest, ReAddOverwritesWithoutDoubleCount) {
  Qrels q;
  q.Add(1, 0, 100, 1);
  q.Add(1, 0, 100, 2);
  EXPECT_EQ(q.Grade(1, 0, 100), 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(QrelsTest, RelevantToAny) {
  Qrels q;
  q.Add(3, 2, 55, 1);
  EXPECT_TRUE(q.RelevantToAny(3, 5, 55));
  EXPECT_FALSE(q.RelevantToAny(3, 2, 55));  // subtopic 2 outside [0,2)
  EXPECT_FALSE(q.RelevantToAny(3, 5, 56));
}

TEST(QrelsTest, CountsAndSubtopics) {
  Qrels q;
  q.Add(1, 0, 10, 1);
  q.Add(1, 0, 11, 1);
  q.Add(1, 0, 12, 0);  // judged non-relevant
  q.Add(1, 3, 13, 1);
  EXPECT_EQ(q.NumRelevant(1, 0), 2u);
  EXPECT_EQ(q.NumRelevant(1, 3), 1u);
  EXPECT_EQ(q.NumRelevant(1, 1), 0u);
  EXPECT_EQ(q.NumSubtopics(1), 4u);
  EXPECT_EQ(q.NumSubtopics(9), 0u);
}

TEST(QrelsTest, JudgmentsEnumeration) {
  Qrels q;
  q.Add(1, 0, 10, 2);
  q.Add(1, 0, 11, 1);
  auto js = q.Judgments(1, 0);
  EXPECT_EQ(js.size(), 2u);
  EXPECT_TRUE(q.Judgments(1, 1).empty());
}

// -------------------------------------------------------- SyntheticCorpus

class SyntheticCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::TopicUniverseConfig ucfg;
    ucfg.num_topics = 5;
    ucfg.min_intents = 3;
    ucfg.max_intents = 4;
    universe_ = synth::GenerateTopicUniverse(ucfg, 0);
    config_.docs_per_intent = 10;
    config_.confusable_docs_per_topic = 5;
    config_.background_docs = 100;
    corpus_ = GenerateSyntheticCorpus(config_, universe_.topics);
  }

  synth::TopicUniverse universe_;
  SyntheticCorpusConfig config_;
  SyntheticCorpus corpus_;
};

TEST_F(SyntheticCorpusTest, TopicSetMirrorsSpecs) {
  ASSERT_EQ(corpus_.topics.size(), universe_.topics.size());
  for (size_t t = 0; t < universe_.topics.size(); ++t) {
    const TrecTopic& topic = corpus_.topics.topic(t);
    EXPECT_EQ(topic.id, t + 1);
    EXPECT_EQ(topic.query, universe_.topics[t].root_query);
    ASSERT_EQ(topic.subtopics.size(), universe_.topics[t].intents.size());
    double sum = 0;
    for (size_t s = 0; s < topic.subtopics.size(); ++s) {
      EXPECT_EQ(topic.subtopics[s].query,
                universe_.topics[t].intents[s].query);
      sum += topic.subtopics[s].probability;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(SyntheticCorpusTest, DocCountMatchesPlan) {
  size_t planted = 0;
  for (const auto& t : universe_.topics) {
    planted += t.intents.size() * config_.docs_per_intent;
  }
  size_t expected = planted +
                    universe_.topics.size() *
                        config_.confusable_docs_per_topic +
                    config_.background_docs;
  EXPECT_EQ(corpus_.store.size(), expected);
}

TEST_F(SyntheticCorpusTest, EveryIntentHasJudgedDocs) {
  for (size_t t = 0; t < corpus_.topics.size(); ++t) {
    const TrecTopic& topic = corpus_.topics.topic(t);
    for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
      EXPECT_EQ(corpus_.qrels.NumRelevant(topic.id, s),
                config_.docs_per_intent)
          << "topic " << topic.id << " subtopic " << s;
    }
  }
}

TEST_F(SyntheticCorpusTest, SomeDocsHighlyRelevant) {
  const TrecTopic& topic = corpus_.topics.topic(0);
  size_t grade2 = 0;
  for (const auto& [doc, grade] : corpus_.qrels.Judgments(topic.id, 0)) {
    if (grade == 2) ++grade2;
  }
  EXPECT_EQ(grade2, static_cast<size_t>(config_.highly_relevant_fraction *
                                        config_.docs_per_intent));
}

TEST_F(SyntheticCorpusTest, RelevantDocsContainIntentTokens) {
  const TrecTopic& topic = corpus_.topics.topic(0);
  auto judged = corpus_.qrels.Judgments(topic.id, 0);
  ASSERT_FALSE(judged.empty());
  const std::string& sub_query = topic.subtopics[0].query;
  std::vector<std::string> tokens = util::SplitWhitespace(sub_query);
  // Titles embed the specialization query verbatim.
  for (const auto& [doc, grade] : judged) {
    const Document& d = corpus_.store.Get(doc);
    for (const std::string& tok : tokens) {
      EXPECT_NE(d.title.find(tok), std::string::npos)
          << "doc " << doc << " title misses token " << tok;
    }
  }
}

TEST_F(SyntheticCorpusTest, BackgroundDocsUnjudged) {
  // The last background_docs ids belong to background documents.
  DocId first_bg =
      static_cast<DocId>(corpus_.store.size() - config_.background_docs);
  for (size_t t = 0; t < corpus_.topics.size(); ++t) {
    const TrecTopic& topic = corpus_.topics.topic(t);
    for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
      for (const auto& [doc, grade] : corpus_.qrels.Judgments(topic.id, s)) {
        EXPECT_LT(doc, first_bg);
      }
    }
  }
}

TEST_F(SyntheticCorpusTest, DeterministicForSeed) {
  SyntheticCorpus again = GenerateSyntheticCorpus(config_, universe_.topics);
  ASSERT_EQ(again.store.size(), corpus_.store.size());
  for (DocId d = 0; d < corpus_.store.size(); d += 37) {
    EXPECT_EQ(again.store.Get(d).body, corpus_.store.Get(d).body);
  }
}

TEST_F(SyntheticCorpusTest, DistractorsAreUnjudgedButPresent) {
  SyntheticCorpusConfig cfg = config_;
  cfg.distractor_docs_per_intent = 4;
  SyntheticCorpus c = GenerateSyntheticCorpus(cfg, universe_.topics);
  size_t intents = 0;
  for (const auto& t : universe_.topics) intents += t.intents.size();
  EXPECT_EQ(c.store.size(),
            corpus_.store.size() + intents * cfg.distractor_docs_per_intent);
  // Distractor urls are marked and never judged relevant.
  size_t distractors = 0;
  for (const Document& d : c.store) {
    if (d.url.find("/dx") == std::string::npos) continue;
    ++distractors;
    for (size_t t = 0; t < c.topics.size(); ++t) {
      const TrecTopic& topic = c.topics.topic(t);
      EXPECT_FALSE(c.qrels.RelevantToAny(
          topic.id, static_cast<uint32_t>(topic.subtopics.size()), d.id));
    }
  }
  EXPECT_EQ(distractors, intents * cfg.distractor_docs_per_intent);
}

TEST_F(SyntheticCorpusTest, ProportionalClustersTrackPopularity) {
  SyntheticCorpusConfig cfg = config_;
  cfg.proportional_cluster_size = true;
  SyntheticCorpus c = GenerateSyntheticCorpus(cfg, universe_.topics);
  for (size_t t = 0; t < c.topics.size(); ++t) {
    const TrecTopic& topic = c.topics.topic(t);
    // Cluster sizes are non-increasing in subtopic probability order and
    // never drop below the configured minimum.
    size_t prev = SIZE_MAX;
    for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
      size_t cluster = c.qrels.NumRelevant(topic.id, s);
      EXPECT_GE(cluster, cfg.min_docs_per_intent);
      EXPECT_LE(cluster, prev);
      prev = cluster;
    }
    // The dominant intent's cluster exceeds the uniform size whenever its
    // probability exceeds 1/m.
    double p0 = topic.subtopics[0].probability;
    if (p0 > 1.5 / static_cast<double>(topic.subtopics.size())) {
      EXPECT_GT(c.qrels.NumRelevant(topic.id, 0), cfg.docs_per_intent);
    }
  }
}

TEST_F(SyntheticCorpusTest, UrlsUnique) {
  std::set<std::string> urls;
  for (const Document& d : corpus_.store) {
    EXPECT_TRUE(urls.insert(d.url).second) << "duplicate url " << d.url;
  }
}

}  // namespace
}  // namespace corpus
}  // namespace optselect
