// Integration tests: the full mine → detect → retrieve → diversify →
// evaluate pipeline over the small synthetic testbed.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/optselect.h"
#include "eval/diversity_evaluator.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"

namespace optselect {
namespace pipeline {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new Testbed(TestbedConfig::Small());
  }
  static void TearDownTestSuite() {
    delete testbed_;
    testbed_ = nullptr;
  }

  static Testbed* testbed_;
};

Testbed* PipelineTest::testbed_ = nullptr;

TEST_F(PipelineTest, TestbedComponentsPopulated) {
  EXPECT_EQ(testbed_->universe().topics.size(), 8u);
  EXPECT_GT(testbed_->corpus().store.size(), 0u);
  EXPECT_EQ(testbed_->corpus().topics.size(), 8u);
  EXPECT_GT(testbed_->log_result().log.size(), 0u);
  EXPECT_GT(testbed_->sessions().size(), 0u);
  EXPECT_GT(testbed_->flow_graph().num_nodes(), 0u);
  EXPECT_GT(testbed_->index().num_docs(), 0u);
}

TEST_F(PipelineTest, BaselineRankingRetrievesDocs) {
  PipelineParams params;
  DiversificationPipeline pipeline(testbed_, params);
  const std::string& root = testbed_->universe().topics[0].root_query;
  std::vector<DocId> ranking = pipeline.BaselineRanking(root, 20);
  EXPECT_FALSE(ranking.empty());
  EXPECT_LE(ranking.size(), 20u);
}

TEST_F(PipelineTest, PrepareDetectsPlantedAmbiguity) {
  PipelineParams params;
  params.num_candidates = 100;
  DiversificationPipeline pipeline(testbed_, params);

  size_t ambiguous = 0;
  for (const auto& topic : testbed_->universe().topics) {
    DiversifiedResult r = pipeline.Prepare(topic.root_query);
    if (r.specializations.ambiguous()) {
      ++ambiguous;
      EXPECT_EQ(r.input.specializations.size(),
                r.specializations.items.size());
      EXPECT_EQ(r.utilities.num_candidates(), r.input.candidates.size());
      // Reference lists are capped at |R_q′|.
      for (const auto& sp : r.input.specializations) {
        EXPECT_LE(sp.results.size(), params.results_per_specialization);
      }
    }
  }
  EXPECT_GE(ambiguous, 6u) << "most planted topics should be detected";
}

TEST_F(PipelineTest, RelevanceNormalizedToUnitInterval) {
  PipelineParams params;
  DiversificationPipeline pipeline(testbed_, params);
  DiversifiedResult r =
      pipeline.Prepare(testbed_->universe().topics[0].root_query);
  ASSERT_FALSE(r.input.candidates.empty());
  double max_rel = 0;
  for (const auto& c : r.input.candidates) {
    EXPECT_GE(c.relevance, 0.0);
    EXPECT_LE(c.relevance, 1.0);
    max_rel = std::max(max_rel, c.relevance);
  }
  EXPECT_NEAR(max_rel, 1.0, 1e-12);
}

TEST_F(PipelineTest, RunProducesValidRanking) {
  PipelineParams params;
  params.num_candidates = 100;
  params.diversify.k = 20;
  DiversificationPipeline pipeline(testbed_, params);
  core::OptSelectDiversifier algo;

  DiversifiedResult r =
      pipeline.Run(testbed_->universe().topics[0].root_query, algo);
  EXPECT_FALSE(r.ranking.empty());
  EXPECT_LE(r.ranking.size(), 20u);
  std::set<DocId> unique(r.ranking.begin(), r.ranking.end());
  EXPECT_EQ(unique.size(), r.ranking.size()) << "duplicate docs in SERP";
  for (DocId d : r.ranking) {
    EXPECT_TRUE(testbed_->corpus().store.Contains(d));
  }
}

TEST_F(PipelineTest, NonAmbiguousQueryFallsBackToBaseline) {
  PipelineParams params;
  params.diversify.k = 10;
  DiversificationPipeline pipeline(testbed_, params);
  core::OptSelectDiversifier algo;
  // Noise queries have no planted refinements.
  const std::string& noise = testbed_->universe().noise_queries[0];
  DiversifiedResult r = pipeline.Run(noise, algo);
  EXPECT_FALSE(r.diversified);
  std::vector<DocId> baseline = pipeline.BaselineRanking(noise, 10);
  EXPECT_EQ(r.ranking, baseline);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  PipelineParams params;
  params.diversify.k = 15;
  DiversificationPipeline pipeline(testbed_, params);
  core::OptSelectDiversifier algo;
  const std::string& root = testbed_->universe().topics[1].root_query;
  DiversifiedResult a = pipeline.Run(root, algo);
  DiversifiedResult b = pipeline.Run(root, algo);
  EXPECT_EQ(a.ranking, b.ranking);
}

TEST_F(PipelineTest, AllAlgorithmsProduceRankings) {
  PipelineParams params;
  params.diversify.k = 10;
  DiversificationPipeline pipeline(testbed_, params);
  for (const std::string& name : core::AvailableDiversifiers()) {
    auto algo = core::MakeDiversifier(name);
    ASSERT_TRUE(algo.ok());
    DiversifiedResult r = pipeline.Run(
        testbed_->universe().topics[0].root_query, *algo.value());
    EXPECT_FALSE(r.ranking.empty()) << name;
  }
}

TEST_F(PipelineTest, DiversificationImprovesSubtopicCoverage) {
  // The mechanism behind the Table 3 shape: within the first SERP page
  // (k = 10 selected results), diversified rankings cover at least as
  // many distinct subtopics as the relevance-only DPH baseline, without
  // materially degrading α-NDCG. OptSelect's proportional-coverage
  // constraint speaks about the selected set, so k matches the page size.
  PipelineParams params;
  params.num_candidates = 150;
  params.results_per_specialization = 10;
  params.threshold_c = 0.3;  // sparsifies cross-intent utilities (paper: c sweep)
  params.diversify.k = 10;
  DiversificationPipeline pipeline(testbed_, params);
  core::OptSelectDiversifier optselect;

  eval::Run baseline_run;
  baseline_run.name = "baseline";
  eval::Run diversified_run;
  diversified_run.name = "optselect";

  for (const auto& topic : testbed_->corpus().topics.topics()) {
    baseline_run.rankings[topic.id] =
        pipeline.BaselineRanking(topic.query, params.diversify.k);
    diversified_run.rankings[topic.id] =
        pipeline.Run(topic.query, optselect).ranking;
  }

  auto coverage_at_10 = [&](const eval::Run& run) {
    const corpus::Qrels& qrels = testbed_->corpus().qrels;
    double total = 0;
    for (const auto& topic : testbed_->corpus().topics.topics()) {
      auto it = run.rankings.find(topic.id);
      if (it == run.rankings.end()) continue;
      std::set<uint32_t> covered;
      size_t depth = std::min<size_t>(10, it->second.size());
      for (size_t r = 0; r < depth; ++r) {
        for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
          if (qrels.Relevant(topic.id, s, it->second[r])) covered.insert(s);
        }
      }
      total += static_cast<double>(covered.size());
    }
    return total / static_cast<double>(testbed_->corpus().topics.size());
  };

  double base_cov = coverage_at_10(baseline_run);
  double div_cov = coverage_at_10(diversified_run);
  EXPECT_GE(div_cov, base_cov)
      << "diversification must not shrink subtopic coverage in the top 10";

  eval::DiversityEvaluator::Options opt;
  opt.cutoffs = {10};
  eval::DiversityEvaluator evaluator(&testbed_->corpus().topics,
                                     &testbed_->corpus().qrels, opt);
  double base = evaluator.Evaluate(baseline_run).alpha_ndcg[10];
  double div = evaluator.Evaluate(diversified_run).alpha_ndcg[10];
  EXPECT_GE(div, base - 0.03)
      << "diversification must not materially degrade α-NDCG@10";
}

TEST(AssembleRankingTest, PicksFirstThenPadsInRankOrder) {
  core::DiversificationInput input;
  for (int i = 0; i < 5; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(100 + i);
    input.candidates.push_back(c);
  }
  std::vector<DocId> r = AssembleRanking(input, {3, 1}, 4);
  EXPECT_EQ(r, (std::vector<DocId>{103, 101, 100, 102}));
}

TEST(AssembleRankingTest, TruncatesAtK) {
  core::DiversificationInput input;
  for (int i = 0; i < 5; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    input.candidates.push_back(c);
  }
  EXPECT_EQ(AssembleRanking(input, {}, 2), (std::vector<DocId>{0, 1}));
  EXPECT_EQ(AssembleRanking(input, {4}, 1), (std::vector<DocId>{4}));
}

TEST(AssembleRankingTest, KBeyondNReturnsAll) {
  core::DiversificationInput input;
  for (int i = 0; i < 3; ++i) {
    core::Candidate c;
    c.doc = static_cast<DocId>(i);
    input.candidates.push_back(c);
  }
  EXPECT_EQ(AssembleRanking(input, {2}, 10),
            (std::vector<DocId>{2, 0, 1}));
}

TEST_F(PipelineTest, UtilityMatrixConnectsIntentsToCandidates) {
  // For a detected topic, at least one candidate must have positive
  // utility for each mined specialization (the planted clusters exist).
  PipelineParams params;
  params.num_candidates = 150;
  DiversificationPipeline pipeline(testbed_, params);
  for (const auto& topic : testbed_->universe().topics) {
    DiversifiedResult r = pipeline.Prepare(topic.root_query);
    if (!r.specializations.ambiguous()) continue;
    for (size_t j = 0; j < r.input.specializations.size(); ++j) {
      double col_max = 0;
      for (size_t i = 0; i < r.input.candidates.size(); ++i) {
        col_max = std::max(col_max, r.utilities.At(i, j));
      }
      EXPECT_GT(col_max, 0.0)
          << "specialization " << r.input.specializations[j].query
          << " of " << topic.root_query << " matches no candidate";
    }
    break;  // one detected topic suffices for this check
  }
}

}  // namespace
}  // namespace pipeline
}  // namespace optselect
