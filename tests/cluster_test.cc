// Tests for the sharded serving cluster: ShardFilter / SplitStore
// partitioning, router ownership + hot-key round-robin, bit-identity of
// cluster rankings against the single-node path (including replicas
// served from non-owner shards), degenerate shard counts (1 shard ==
// single node, empty shards, all traffic on one shard), batch fan-out
// ordering, dirty-only ApplyDelta reloads, and cluster-level stats
// aggregation.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/query_router.h"
#include "cluster/sharded_cluster.h"
#include "pipeline/testbed.h"
#include "serving/cache_key.h"
#include "serving/serving_node.h"
#include "store/store_builder.h"

namespace optselect {
namespace cluster {
namespace {

// ------------------------------------------------------------ ShardFilter

TEST(ShardFilterTest, OwnerShardIsStableAndInRange) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    for (const char* key : {"apple", "jaguar classic", "x"}) {
      size_t owner = store::ShardFilter::OwnerShard(key, n);
      EXPECT_LT(owner, n);
      EXPECT_EQ(owner, store::ShardFilter::OwnerShard(key, n));
    }
  }
  EXPECT_EQ(store::ShardFilter::OwnerShard("anything", 1), 0u);
}

TEST(ShardFilterTest, KeepsOwnedAndReplicatedKeys) {
  const std::string key = "apple";
  const size_t n = 4;
  size_t owner = store::ShardFilter::OwnerShard(key, n);
  for (size_t i = 0; i < n; ++i) {
    store::ShardFilter filter;
    filter.num_shards = n;
    filter.shard_index = i;
    EXPECT_EQ(filter.Keeps(key), i == owner);
    filter.replicated.insert(key);
    EXPECT_TRUE(filter.Keeps(key));  // replicated ⇒ every shard holds it
  }
}

// ------------------------------------------------------------ the fixture

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    // Default builder options: plans compiled at the default pipeline
    // params, so the cluster tests also cover plans surviving the
    // SplitStore copy (plan_served through a shard).
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
    for (const auto& [key, entry] : store_->entries()) {
      stored_keys_->push_back(key);
    }
    std::sort(stored_keys_->begin(), stored_keys_->end());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  /// Default pipeline params ⇒ the compiled plans are compatible and
  /// stored queries are plan-served, on shards exactly like on a
  /// single node.
  static ClusterConfig BaseConfig(size_t num_shards) {
    ClusterConfig config;
    config.num_shards = num_shards;
    config.node.num_workers = 1;
    config.node.queue_capacity = 256;
    config.node.max_batch = 4;
    config.node.params.diversify.k = 10;
    return config;
  }

  static serving::ServingNode SingleNode() {
    return serving::ServingNode(store_, testbed_,
                                BaseConfig(1).node);
  }

  static std::string NoiseQuery() {
    return testbed_->universe().noise_queries[0];
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
  static std::vector<std::string>* stored_keys_;
};

pipeline::Testbed* ClusterTest::testbed_ = nullptr;
store::DiversificationStore* ClusterTest::store_ = nullptr;
std::vector<std::string>* ClusterTest::stored_keys_ =
    new std::vector<std::string>();

// ------------------------------------------------------------- SplitStore

TEST_F(ClusterTest, SplitStorePartitionsExactly) {
  const size_t n = 3;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    store::ShardFilter filter;
    filter.num_shards = n;
    filter.shard_index = i;
    store::DiversificationStore shard = SplitStore(*store_, filter);
    EXPECT_EQ(shard.version(), store_->version());
    total += shard.size();
    for (const auto& [key, entry] : shard.entries()) {
      EXPECT_EQ(store::ShardFilter::OwnerShard(key, n), i);
      const store::StoredEntry* source = store_->Find(key);
      ASSERT_NE(source, nullptr);
      EXPECT_TRUE(StoredEntriesEqual(entry, *source));
      // Compiled plans ride the copy.
      EXPECT_EQ(entry.plan.empty(), source->plan.empty());
    }
  }
  EXPECT_EQ(total, store_->size());  // disjoint and complete
}

TEST_F(ClusterTest, SplitStoreReplicatesListedKeys) {
  const size_t n = 3;
  const std::string& hot = stored_keys_->front();
  size_t holders = 0;
  for (size_t i = 0; i < n; ++i) {
    store::ShardFilter filter;
    filter.num_shards = n;
    filter.shard_index = i;
    filter.replicated.insert(hot);
    if (SplitStore(*store_, filter).Find(hot) != nullptr) ++holders;
  }
  EXPECT_EQ(holders, n);
}

// ------------------------------------------------- degenerate shard counts

TEST_F(ClusterTest, SingleShardDegeneratesToSingleNode) {
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(1));
  serving::ServingNode node = SingleNode();
  ASSERT_EQ(cl.num_shards(), 1u);
  EXPECT_EQ(cl.shard(0)->store().size(), store_->size());

  std::vector<std::string> queries = *stored_keys_;
  queries.push_back(NoiseQuery());
  for (const std::string& q : queries) {
    serving::ServeResult via_cluster = cl.Serve(q);
    serving::ServeResult via_node = node.Serve(q);
    EXPECT_EQ(via_cluster.ranking, via_node.ranking) << q;
    EXPECT_EQ(via_cluster.diversified, via_node.diversified) << q;
    EXPECT_EQ(via_cluster.plan_served, via_node.plan_served) << q;
    EXPECT_EQ(cl.router().OwnerOf(q), 0u);
  }

  ClusterStats cs = cl.Stats();
  serving::ServingStats ns = node.Stats();
  EXPECT_EQ(cs.num_shards, 1u);
  EXPECT_EQ(cs.total.completed, ns.completed);
  EXPECT_EQ(cs.total.diversified, ns.diversified);
  EXPECT_EQ(cs.total.plan_served, ns.plan_served);
  EXPECT_EQ(cs.total.passthrough, ns.passthrough);
  EXPECT_EQ(cs.router.routed, queries.size());
  EXPECT_EQ(cs.router.per_shard[0], queries.size());
}

TEST_F(ClusterTest, ClusterRankingsBitIdenticalAcrossShardCounts) {
  serving::ServingNode node = SingleNode();
  std::vector<std::string> queries = *stored_keys_;
  queries.push_back(NoiseQuery());

  for (size_t n : {size_t{2}, size_t{3}, size_t{5}}) {
    ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));
    for (const std::string& q : queries) {
      serving::ServeResult via_cluster = cl.Serve(q);
      serving::ServeResult via_node = node.Serve(q);
      EXPECT_EQ(via_cluster.ranking, via_node.ranking)
          << q << " shards=" << n;
      EXPECT_EQ(via_cluster.diversified, via_node.diversified) << q;
      EXPECT_EQ(via_cluster.plan_served, via_node.plan_served) << q;
    }
  }
}

TEST_F(ClusterTest, EmptyShardStillServesItsTraffic) {
  // Find a shard count under which some shard owns no stored key — it
  // exists well before n reaches the store size ceiling.
  size_t n = 0, empty_shard = 0;
  for (size_t candidate = 2; candidate <= 64 && n == 0; ++candidate) {
    std::vector<bool> owned(candidate, false);
    for (const std::string& key : *stored_keys_) {
      owned[store::ShardFilter::OwnerShard(key, candidate)] = true;
    }
    for (size_t i = 0; i < candidate; ++i) {
      if (!owned[i]) {
        n = candidate;
        empty_shard = i;
        break;
      }
    }
  }
  ASSERT_GT(n, 0u) << "no empty shard up to 64 shards?";

  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));
  EXPECT_TRUE(cl.shard(empty_shard)->store().empty());

  // A query owned by the empty shard must still be answered (it cannot
  // be a stored query, so: passthrough), identically to a single node.
  std::string probe;
  for (const std::string& noise : testbed_->universe().noise_queries) {
    if (cl.router().OwnerOf(noise) == empty_shard) {
      probe = noise;
      break;
    }
  }
  for (int i = 0; probe.empty() && i < 1000; ++i) {
    std::string synthetic = "empty shard probe " + std::to_string(i);
    if (cl.router().OwnerOf(synthetic) == empty_shard) probe = synthetic;
  }
  ASSERT_FALSE(probe.empty());

  serving::ServeResult via_cluster = cl.Serve(probe);
  serving::ServingNode node = SingleNode();
  serving::ServeResult via_node = node.Serve(probe);
  EXPECT_TRUE(via_cluster.ok);
  EXPECT_FALSE(via_cluster.diversified);
  EXPECT_EQ(via_cluster.ranking, via_node.ranking);
  EXPECT_EQ(cl.shard(empty_shard)->Stats().completed, 1u);

  // Stored queries are untouched by the empty shard's existence.
  serving::ServeResult stored = cl.Serve(stored_keys_->front());
  EXPECT_TRUE(stored.diversified);
  EXPECT_EQ(stored.ranking, node.Serve(stored_keys_->front()).ranking);
}

TEST_F(ClusterTest, AllTrafficHashingToOneShardLeavesOthersIdle) {
  const size_t n = 3;
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));
  serving::ServingNode node = SingleNode();

  // The largest same-owner group of stored keys: every request in it
  // lands on one shard; the other shards must stay completely idle.
  std::vector<std::vector<std::string>> by_owner(n);
  for (const std::string& key : *stored_keys_) {
    by_owner[store::ShardFilter::OwnerShard(key, n)].push_back(key);
  }
  size_t hot_shard = 0;
  for (size_t i = 1; i < n; ++i) {
    if (by_owner[i].size() > by_owner[hot_shard].size()) hot_shard = i;
  }
  ASSERT_FALSE(by_owner[hot_shard].empty());

  for (const std::string& q : by_owner[hot_shard]) {
    serving::ServeResult r = cl.Serve(q);
    EXPECT_TRUE(r.diversified) << q;
    EXPECT_EQ(r.ranking, node.Serve(q).ranking) << q;
  }
  ClusterStats cs = cl.Stats();
  EXPECT_EQ(cs.per_shard[hot_shard].completed,
            by_owner[hot_shard].size());
  for (size_t i = 0; i < n; ++i) {
    if (i != hot_shard) EXPECT_EQ(cs.per_shard[i].completed, 0u);
  }
  EXPECT_EQ(cs.router.per_shard[hot_shard], by_owner[hot_shard].size());
}

// --------------------------------------------------------- hot replication

TEST_F(ClusterTest, ReplicatedQueryServedFromEveryShardBitIdentical) {
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.replicate_hot = 2;
  ShardedCluster cl(*store_, testbed_,
                    &testbed_->recommender().popularity(), config);
  ASSERT_FALSE(cl.replicated_keys().empty());
  serving::ServingNode node = SingleNode();

  for (const std::string& hot : cl.replicated_keys()) {
    EXPECT_TRUE(cl.router().IsReplicated(hot));
    std::vector<DocId> reference = node.Serve(hot).ranking;
    size_t owner = cl.router().OwnerOf(hot);
    for (size_t i = 0; i < n; ++i) {
      // Every shard — owner or not — holds the replica and serves the
      // identical ranking directly.
      ASSERT_NE(cl.shard(i)->store().Find(hot), nullptr)
          << hot << " missing on shard " << i;
      serving::ServeResult r = cl.shard(i)->Serve(hot);
      EXPECT_TRUE(r.diversified);
      EXPECT_EQ(r.ranking, reference)
          << hot << " diverged on shard " << i
          << (i == owner ? " (owner)" : " (replica)");
    }
  }

  // The router spreads a replicated key round-robin: n consecutive
  // decisions cover all n shards.
  std::set<size_t> picked;
  for (size_t i = 0; i < n; ++i) {
    picked.insert(cl.router().Route(cl.replicated_keys().front()));
  }
  EXPECT_EQ(picked.size(), n);
  EXPECT_EQ(cl.router().stats().replicated_routed, n);

  // Non-replicated keys still pin to their owner.
  for (const std::string& key : *stored_keys_) {
    if (cl.router().IsReplicated(key)) continue;
    EXPECT_EQ(cl.router().Route(key), cl.router().OwnerOf(key));
  }
}

// -------------------------------------------------------- batch fan-out

TEST_F(ClusterTest, ServeBatchPreservesOrderAndFansOut) {
  const size_t n = 3;
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));
  serving::ServingNode node = SingleNode();

  std::vector<std::string> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (const std::string& key : *stored_keys_) batch.push_back(key);
    batch.push_back(NoiseQuery());
  }
  std::vector<serving::ServeResult> results = cl.ServeBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].ranking, node.Serve(batch[i]).ranking)
        << batch[i];
  }

  ClusterStats cs = cl.Stats();
  EXPECT_EQ(cs.router.batches, 1u);
  EXPECT_EQ(cs.router.batch_requests, batch.size());
  EXPECT_EQ(cs.total.completed, batch.size());
  size_t shards_used = 0;
  for (size_t i = 0; i < n; ++i) {
    if (cs.per_shard[i].completed > 0) ++shards_used;
  }
  EXPECT_GT(shards_used, 1u);  // the batch genuinely fanned out
}

// ------------------------------------------------------------ ApplyDelta

TEST_F(ClusterTest, ApplyDeltaReloadsOnlyTheOwningShard) {
  const size_t n = 3;
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));
  const std::string& target = stored_keys_->front();
  size_t owner = cl.router().OwnerOf(target);

  // Warm every stored ranking (and the per-shard caches).
  std::vector<std::vector<DocId>> before;
  for (const std::string& key : *stored_keys_) {
    before.push_back(cl.Serve(key).ranking);
  }

  // Perturb the target's specialization distribution — the shape of a
  // refresh-mined change. The stale compiled plan is dropped by Put.
  store::StoreDelta delta;
  store::StoredEntry perturbed = *store_->Find(target);
  perturbed.specializations[0].probability *= 0.25;
  double norm = 0;
  for (const auto& sp : perturbed.specializations) norm += sp.probability;
  for (auto& sp : perturbed.specializations) sp.probability /= norm;
  delta.upserts.push_back(perturbed);

  ShardedCluster::ApplyOutcome outcome = cl.ApplyDelta(delta);
  EXPECT_EQ(outcome.shards_reloaded, 1u);
  EXPECT_EQ(outcome.changes_applied, 1u);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(cl.shard(i)->Stats().reloads, i == owner ? 1u : 0u);
  }
  const store::StoredEntry* after_entry =
      cl.shard(owner)->snapshot()->store().Find(target);
  ASSERT_NE(after_entry, nullptr);
  EXPECT_DOUBLE_EQ(after_entry->specializations[0].probability,
                   perturbed.specializations[0].probability);
  EXPECT_TRUE(after_entry->plan.empty());  // stale plan dropped

  // Unchanged keys: bit-identical, still cached.
  for (size_t i = 0; i < stored_keys_->size(); ++i) {
    if ((*stored_keys_)[i] == target) continue;
    serving::ServeResult r = cl.Serve((*stored_keys_)[i]);
    EXPECT_EQ(r.ranking, before[i]) << (*stored_keys_)[i];
    EXPECT_TRUE(r.cache_hit) << (*stored_keys_)[i];
  }

  // A content-identical delta reloads nothing anywhere.
  store::StoreDelta same;
  same.upserts.push_back(perturbed);
  ShardedCluster::ApplyOutcome noop = cl.ApplyDelta(same);
  EXPECT_EQ(noop.shards_reloaded, 0u);
}

TEST_F(ClusterTest, ApplyDeltaUpdatesEveryReplicaOfAHotKey) {
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.replicate_hot = 1;
  ShardedCluster cl(*store_, testbed_,
                    &testbed_->recommender().popularity(), config);
  ASSERT_EQ(cl.replicated_keys().size(), 1u);
  const std::string hot = cl.replicated_keys().front();

  store::StoreDelta delta;
  store::StoredEntry perturbed = *store_->Find(hot);
  perturbed.specializations[0].probability *= 0.25;
  double norm = 0;
  for (const auto& sp : perturbed.specializations) norm += sp.probability;
  for (auto& sp : perturbed.specializations) sp.probability /= norm;
  delta.upserts.push_back(perturbed);

  ShardedCluster::ApplyOutcome outcome = cl.ApplyDelta(delta);
  EXPECT_EQ(outcome.shards_reloaded, n);  // every replica holder
  std::vector<DocId> reference;
  for (size_t i = 0; i < n; ++i) {
    const store::StoredEntry* replica =
        cl.shard(i)->snapshot()->store().Find(hot);
    ASSERT_NE(replica, nullptr);
    EXPECT_DOUBLE_EQ(replica->specializations[0].probability,
                     perturbed.specializations[0].probability);
    std::vector<DocId> ranking = cl.shard(i)->Serve(hot).ranking;
    if (i == 0) {
      reference = ranking;
    } else {
      EXPECT_EQ(ranking, reference) << "replicas diverged after delta";
    }
  }
}

// ------------------------------------------------------ stats aggregation

TEST_F(ClusterTest, StatsAggregateAcrossShards) {
  const size_t n = 3;
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(n));

  size_t served = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (const std::string& key : *stored_keys_) {
      ASSERT_TRUE(cl.Serve(key).ok);
      ++served;
    }
    ASSERT_TRUE(cl.Serve(NoiseQuery()).ok);
    ++served;
  }

  ClusterStats cs = cl.Stats();
  EXPECT_EQ(cs.num_shards, n);
  ASSERT_EQ(cs.per_shard.size(), n);
  uint64_t sum_completed = 0, sum_diversified = 0, sum_hits = 0;
  for (const auto& s : cs.per_shard) {
    sum_completed += s.completed;
    sum_diversified += s.diversified;
    sum_hits += s.cache_hits;
  }
  EXPECT_EQ(cs.total.completed, served);
  EXPECT_EQ(cs.total.completed, sum_completed);
  EXPECT_EQ(cs.total.diversified, sum_diversified);
  EXPECT_EQ(cs.total.cache_hits, sum_hits);
  EXPECT_EQ(cs.total.diversified + cs.total.passthrough, served);
  EXPECT_GT(cs.total.cache_hits, 0u);  // second rep hits per-shard caches
  EXPECT_GT(cs.total.qps, 0.0);
  EXPECT_GT(cs.total.p50_ms, 0.0);
  EXPECT_LE(cs.total.p50_ms, cs.total.p95_ms);
  EXPECT_LE(cs.total.p95_ms, cs.total.p99_ms);
  EXPECT_EQ(cs.router.routed, served);
  uint64_t sum_routed = 0;
  for (uint64_t r : cs.router.per_shard) sum_routed += r;
  EXPECT_EQ(sum_routed, served);
}

}  // namespace
}  // namespace cluster
}  // namespace optselect
