// Tests for the failure-domain layer: fault-injector hooks at the
// admission / store-read / reload boundaries, the router's per-shard
// circuit breaker (open on consecutive failures, count-based half-open
// probing, close on success), replica failover and hedged retries for
// replicated keys, the degraded passthrough fallback for dead owners,
// and a miniature deterministic chaos scenario.
//
// Tests that only need a *dead* shard use ServingNode::Shutdown and run
// in every build; tests that need transient faults, latency, or revival
// need the injector hooks and GTEST_SKIP when they are compiled out
// (Release without -DOPTSELECT_FAULT_INJECTION=ON).

#include <chrono>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/chaos.h"
#include "cluster/query_router.h"
#include "cluster/sharded_cluster.h"
#include "pipeline/testbed.h"
#include "serving/fault_injector.h"
#include "serving/serving_node.h"
#include "serving/store_refresher.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"

namespace optselect {
namespace cluster {
namespace {

#define SKIP_WITHOUT_FAULT_HOOKS()                                        \
  do {                                                                    \
    if (!serving::FaultInjectionCompiledIn()) {                           \
      GTEST_SKIP() << "fault-injection hooks compiled out "               \
                      "(OPTSELECT_FAULT_INJECTION=0)";                    \
    }                                                                     \
  } while (0)

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new store::DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    store::BuildStore(testbed_->detector(), testbed_->searcher(),
                      testbed_->snippets(), testbed_->analyzer(),
                      testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
    for (const auto& [key, entry] : store_->entries()) {
      stored_keys_->push_back(key);
    }
    std::sort(stored_keys_->begin(), stored_keys_->end());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete testbed_;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static ClusterConfig BaseConfig(size_t num_shards) {
    ClusterConfig config;
    config.num_shards = num_shards;
    config.node.num_workers = 1;
    config.node.queue_capacity = 256;
    config.node.max_batch = 4;
    config.node.params.diversify.k = 10;
    return config;
  }

  /// The plain DPH ranking any shard computes without a store entry —
  /// what a degraded answer must be bit-identical to.
  static std::vector<DocId> PassthroughRanking(const std::string& query) {
    store::DiversificationStore empty;
    serving::ServingNode plain(&empty, testbed_, BaseConfig(1).node);
    return plain.Serve(query).ranking;
  }

  static pipeline::Testbed* testbed_;
  static store::DiversificationStore* store_;
  static std::vector<std::string>* stored_keys_;
};

pipeline::Testbed* FaultInjectionTest::testbed_ = nullptr;
store::DiversificationStore* FaultInjectionTest::store_ = nullptr;
std::vector<std::string>* FaultInjectionTest::stored_keys_ =
    new std::vector<std::string>();

// --------------------------------------------------------- plumbing bits

TEST(BreakerStateNameTest, NamesAllStates) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

// ------------------------------------------------- healthy-path identity

TEST_F(FaultInjectionTest, FailoverPathIsBitIdenticalWhenHealthy) {
  ShardedCluster cl(*store_, testbed_, nullptr, BaseConfig(3));
  serving::ServingNode single(store_, testbed_, BaseConfig(1).node);

  std::vector<std::string> queries = *stored_keys_;
  queries.push_back(testbed_->universe().noise_queries[0]);
  for (const std::string& q : queries) {
    serving::ServeResult via_failover = cl.ServeWithFailover(q);
    serving::ServeResult via_node = single.Serve(q);
    ASSERT_TRUE(via_failover.ok) << q;
    EXPECT_FALSE(via_failover.degraded) << q;
    EXPECT_EQ(via_failover.ranking, via_node.ranking) << q;
    EXPECT_EQ(via_failover.diversified, via_node.diversified) << q;
  }
  RouterStats rs = cl.router().stats();
  EXPECT_EQ(rs.failover_serves, queries.size());
  EXPECT_EQ(rs.retried, 0u);
  EXPECT_EQ(rs.degraded, 0u);
  EXPECT_EQ(rs.dropped, 0u);
  EXPECT_TRUE(cl.router().breaker_transitions().empty());
}

// --------------------------------- dead owner: degrade + breaker cycle

TEST_F(FaultInjectionTest, DeadOwnerDegradesAndBreakerOpensThenProbes) {
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.failover.breaker_threshold = 3;
  config.failover.breaker_probe_after = 4;
  ShardedCluster cl(*store_, testbed_, nullptr, config);

  // Prefer a victim whose diversified ranking visibly differs from the
  // plain DPH order, so "degraded" is observable in the bytes too.
  std::string victim_key = stored_keys_->front();
  for (const std::string& key : *stored_keys_) {
    if (cl.Serve(key).ranking != PassthroughRanking(key)) {
      victim_key = key;
      break;
    }
  }
  const size_t owner = cl.router().OwnerOf(victim_key);
  std::vector<DocId> passthrough = PassthroughRanking(victim_key);

  cl.shard(owner)->Shutdown();  // the shard is gone, not slow

  // threshold failed attempts open the breaker; every request is still
  // answered, degraded to the passthrough ranking.
  for (int i = 0; i < 3; ++i) {
    serving::ServeResult r = cl.ServeWithFailover(victim_key);
    ASSERT_TRUE(r.ok) << i;
    EXPECT_TRUE(r.degraded) << i;
    EXPECT_FALSE(r.diversified) << i;
    EXPECT_EQ(r.ranking, passthrough) << i;
  }
  EXPECT_EQ(cl.router().shard_state(owner), BreakerState::kOpen);

  // While open, requests skip the dead shard without attempting it;
  // after probe_after skips one probe goes through, fails, and the
  // breaker reopens. 4 skips + probe = 5 more requests.
  for (int i = 0; i < 5; ++i) {
    serving::ServeResult r = cl.ServeWithFailover(victim_key);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.ranking, passthrough);
  }
  std::vector<BreakerTransition> log = cl.router().breaker_transitions();
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0].shard, owner);
  EXPECT_EQ(log[0].from, BreakerState::kClosed);
  EXPECT_EQ(log[0].to, BreakerState::kOpen);
  EXPECT_EQ(log[1].to, BreakerState::kHalfOpen);  // the probe admission
  EXPECT_EQ(log[2].to, BreakerState::kOpen);      // the probe failed
  RouterStats rs = cl.router().stats();
  EXPECT_GE(rs.probes, 1u);
  EXPECT_GE(rs.breaker_opens, 2u);
  EXPECT_EQ(rs.dropped, 0u);
  EXPECT_EQ(rs.degraded, 8u);

  // Keys owned by live shards are untouched — same diversified ranking.
  for (const std::string& key : *stored_keys_) {
    if (cl.router().OwnerOf(key) == owner) continue;
    serving::ServeResult r = cl.ServeWithFailover(key);
    ASSERT_TRUE(r.ok) << key;
    EXPECT_FALSE(r.degraded) << key;
    EXPECT_TRUE(r.diversified) << key;
  }
}

// ------------------------------------- replicated keys: replica failover

TEST_F(FaultInjectionTest, ReplicatedKeyFailsOverToReplicasBitIdentical) {
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.replicate_hot = 1;
  ShardedCluster cl(*store_, testbed_,
                    &testbed_->recommender().popularity(), config);
  ASSERT_EQ(cl.replicated_keys().size(), 1u);
  const std::string hot = cl.replicated_keys().front();

  serving::ServingNode single(store_, testbed_, BaseConfig(1).node);
  const std::vector<DocId> reference = single.Serve(hot).ranking;

  cl.shard(1)->Shutdown();
  // Every request is answered from a live replica: full quality, no
  // degradation, bit-identical, regardless of where round-robin lands.
  for (size_t i = 0; i < 2 * n + 1; ++i) {
    serving::ServeResult r = cl.ServeWithFailover(hot);
    ASSERT_TRUE(r.ok) << i;
    EXPECT_FALSE(r.degraded) << i;
    EXPECT_TRUE(r.diversified) << i;
    EXPECT_EQ(r.ranking, reference) << i;
  }
  EXPECT_EQ(cl.router().stats().dropped, 0u);
  EXPECT_EQ(cl.router().stats().degraded, 0u);
}

// ----------------------------------------- injected faults (hook-gated)

TEST_F(FaultInjectionTest, DeadInjectorShedsSubmitAndServe) {
  SKIP_WITHOUT_FAULT_HOOKS();
  serving::ServingNode node(store_, testbed_, BaseConfig(1).node);
  serving::ScriptedFaultInjector injector;
  node.set_fault_injector(&injector);

  injector.SetDead(true);
  EXPECT_FALSE(node.Submit(stored_keys_->front(),
                           [](serving::ServeResult) { FAIL(); }));
  EXPECT_FALSE(node.Serve(stored_keys_->front()).ok);
  EXPECT_EQ(node.Stats().rejected, 2u);
  EXPECT_EQ(injector.counts().submit_faults, 2u);

  injector.SetDead(false);
  EXPECT_TRUE(node.Serve(stored_keys_->front()).ok);
  node.set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, StoreReadBurstFailsExactlyNThenRecovers) {
  SKIP_WITHOUT_FAULT_HOOKS();
  serving::ServingConfig config = BaseConfig(1).node;
  config.enable_cache = false;  // every request actually reads
  serving::ServingNode node(store_, testbed_, config);
  serving::ScriptedFaultInjector injector;
  node.set_fault_injector(&injector);

  injector.FailNextStoreReads(2);
  EXPECT_FALSE(node.Serve(stored_keys_->front()).ok);
  EXPECT_FALSE(node.Serve(stored_keys_->front()).ok);
  serving::ServeResult recovered = node.Serve(stored_keys_->front());
  EXPECT_TRUE(recovered.ok);
  EXPECT_TRUE(recovered.diversified);

  serving::ServingStats stats = node.Stats();
  EXPECT_EQ(stats.faulted, 2u);
  EXPECT_EQ(stats.completed, 3u);  // faulted requests still answer
  EXPECT_EQ(injector.counts().store_read_faults, 2u);
  node.set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, ReloadFaultRefusesSwapAndKeepsServing) {
  SKIP_WITHOUT_FAULT_HOOKS();
  serving::ServingNode node(store_, testbed_, BaseConfig(1).node);
  serving::ScriptedFaultInjector injector;
  node.set_fault_injector(&injector);
  const uint64_t version_before = node.snapshot()->version();

  // A real content change, built the way a refresher would.
  store::StoreDelta delta;
  store::StoredEntry perturbed = *store_->Find(stored_keys_->front());
  perturbed.specializations[0].probability *= 0.5;
  double norm = 0;
  for (const auto& sp : perturbed.specializations) norm += sp.probability;
  for (auto& sp : perturbed.specializations) sp.probability /= norm;
  delta.upserts.push_back(perturbed);
  store::SnapshotBuildResult built =
      store::BuildSnapshot(node.snapshot().get(), delta);
  ASSERT_FALSE(built.changed_keys.empty());

  injector.SetFailReloads(true);
  serving::ServingNode::ReloadOutcome refused =
      node.ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(node.snapshot()->version(), version_before);
  EXPECT_EQ(node.Stats().reload_failures, 1u);
  EXPECT_EQ(node.Stats().reloads, 0u);
  EXPECT_TRUE(node.Serve(stored_keys_->front()).ok);

  injector.SetFailReloads(false);
  serving::ServingNode::ReloadOutcome applied =
      node.ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_TRUE(applied.ok);
  EXPECT_EQ(node.snapshot()->version(), built.snapshot->version());
  node.set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, TransientFaultsOpenBreakerThenRecoveryCloses) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const size_t n = 2;
  ClusterConfig config = BaseConfig(n);
  config.failover.breaker_threshold = 2;
  config.failover.breaker_probe_after = 3;
  ShardedCluster cl(*store_, testbed_, nullptr, config);

  const std::string& key = stored_keys_->front();
  const size_t owner = cl.router().OwnerOf(key);
  serving::ScriptedFaultInjector injector;
  cl.shard(owner)->set_fault_injector(&injector);
  std::vector<DocId> healthy = cl.ServeWithFailover(key).ranking;

  // Two store-read failures trip the breaker; both requests degrade.
  injector.FailNextStoreReads(2);
  for (int i = 0; i < 2; ++i) {
    serving::ServeResult r = cl.ServeWithFailover(key);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.degraded);
  }
  EXPECT_EQ(cl.router().shard_state(owner), BreakerState::kOpen);

  // The burst is spent — the shard is healthy again. After probe_after
  // (= 3) skipped decisions the next one is the probe: it goes
  // through, succeeds, and closes the breaker; from then on the key
  // serves at full quality again.
  for (int i = 0; i < 4; ++i) {
    serving::ServeResult r = cl.ServeWithFailover(key);
    ASSERT_TRUE(r.ok);  // degraded while skipping, probe serves normally
  }
  EXPECT_EQ(cl.router().shard_state(owner), BreakerState::kClosed);
  serving::ServeResult recovered = cl.ServeWithFailover(key);
  ASSERT_TRUE(recovered.ok);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.ranking, healthy);

  std::vector<BreakerTransition> log = cl.router().breaker_transitions();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].to, BreakerState::kOpen);
  EXPECT_EQ(log[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(log[2].to, BreakerState::kClosed);
  cl.shard(owner)->set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, OwnerReachedInFallbackSweepIsNotTaggedDegraded) {
  // The fallback sweep may reach the key's *owner* (its probe turn, or
  // the breaker-ignoring last resort). A holder's answer is full
  // quality — it must never come back tagged degraded.
  SKIP_WITHOUT_FAULT_HOOKS();
  ClusterConfig config = BaseConfig(2);
  config.failover.breaker_threshold = 2;
  config.failover.breaker_probe_after = 8;
  ShardedCluster cl(*store_, testbed_, nullptr, config);

  const std::string& key = stored_keys_->front();
  const size_t owner = cl.router().OwnerOf(key);
  const size_t other = 1 - owner;
  std::vector<DocId> healthy = cl.ServeWithFailover(key).ranking;

  serving::ScriptedFaultInjector injector;
  cl.shard(owner)->set_fault_injector(&injector);
  injector.FailNextStoreReads(2);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(cl.ServeWithFailover(key).ok);
  }
  ASSERT_EQ(cl.router().shard_state(owner), BreakerState::kOpen);

  // The owner has recovered (burst spent) but its breaker is still
  // open, and the only other shard is now dead: the last-resort sweep
  // lands back on the owner, which answers at full quality.
  cl.shard(other)->Shutdown();
  serving::ServeResult r = cl.ServeWithFailover(key);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.degraded) << "a holder's answer is never degraded";
  EXPECT_TRUE(r.diversified);
  EXPECT_EQ(r.ranking, healthy);
  EXPECT_EQ(cl.router().shard_state(owner), BreakerState::kClosed)
      << "the successful answer closes the breaker";
  cl.shard(owner)->set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, ApplyDeltaSurfacesRefusedReloadAndRetries) {
  // A shard whose reload is refused must be reported, not counted as
  // applied — and a second ApplyDelta with the same delta must bring
  // exactly that shard back in sync (replica bit-identity restored).
  SKIP_WITHOUT_FAULT_HOOKS();
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.replicate_hot = 1;
  ShardedCluster cl(*store_, testbed_,
                    &testbed_->recommender().popularity(), config);
  ASSERT_EQ(cl.replicated_keys().size(), 1u);
  const std::string hot = cl.replicated_keys().front();

  store::StoreDelta delta;
  store::StoredEntry perturbed = *store_->Find(hot);
  perturbed.specializations[0].probability *= 0.25;
  double norm = 0;
  for (const auto& sp : perturbed.specializations) norm += sp.probability;
  for (auto& sp : perturbed.specializations) sp.probability /= norm;
  delta.upserts.push_back(perturbed);

  serving::ScriptedFaultInjector injector;
  cl.shard(0)->set_fault_injector(&injector);
  injector.SetFailReloads(true);
  ShardedCluster::ApplyOutcome refused = cl.ApplyDelta(delta);
  EXPECT_EQ(refused.shards_reloaded, n - 1) << "every replica but shard 0";
  EXPECT_EQ(refused.shards_failed, 1u);
  EXPECT_EQ(cl.shard(0)->Stats().reloads, 0u);
  EXPECT_EQ(cl.shard(0)->Stats().reload_failures, 1u);

  // Retry with the same delta: up-to-date shards skip (their slice is
  // content-identical), only the refused shard swaps.
  injector.SetFailReloads(false);
  ShardedCluster::ApplyOutcome retried = cl.ApplyDelta(delta);
  EXPECT_EQ(retried.shards_failed, 0u);
  EXPECT_EQ(retried.shards_reloaded, 1u);
  EXPECT_EQ(cl.shard(0)->Stats().reloads, 1u);

  // Replicas converged: every shard serves the identical new ranking.
  std::vector<DocId> reference = cl.shard(0)->Serve(hot).ranking;
  for (size_t i = 1; i < n; ++i) {
    EXPECT_EQ(cl.shard(i)->Serve(hot).ranking, reference) << i;
  }
  cl.shard(0)->set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, RefresherRetriesPendingSwapAfterReloadFault) {
  // A refused ReloadStore must defer the mined update, not lose it:
  // the refresher keeps the built snapshot pending and the next tick
  // swaps it in — even with no fresh log traffic.
  SKIP_WITHOUT_FAULT_HOOKS();
  std::string log_path = ::testing::TempDir() + "/fault_refresher_log.tsv";
  ASSERT_TRUE(testbed_->log_result().log.SaveTsv(log_path).ok());

  serving::ServingNode node(store_, testbed_, BaseConfig(1).node);
  serving::ScriptedFaultInjector injector;
  node.set_fault_injector(&injector);
  serving::StoreRefresherConfig rc;
  rc.log_path = log_path;
  serving::StoreRefresher refresher(
      &node, &testbed_->searcher(), &testbed_->snippets(),
      &testbed_->analyzer(), &testbed_->corpus().store,
      testbed_->log_result().log, rc);

  // Fresh traffic that shifts one stored entry's distribution.
  const store::StoredEntry* target =
      node.snapshot()->store().Find(stored_keys_->front());
  ASSERT_NE(target, nullptr);
  const std::string boosted = target->specializations.back().query;
  {
    std::ofstream out(log_path, std::ios::app);
    for (int i = 0; i < 400; ++i) {
      out << boosted << "\t9999\t" << (2000000000 + i) << "\t1,2\t\n";
    }
  }

  injector.SetFailReloads(true);
  EXPECT_FALSE(refresher.TickOnce().ok()) << "refused swap is an error";
  EXPECT_EQ(refresher.stats().swaps, 0u);
  EXPECT_EQ(refresher.stats().errors, 1u);
  EXPECT_EQ(node.Stats().reloads, 0u);
  EXPECT_EQ(node.Stats().reload_failures, 1u);
  EXPECT_EQ(node.Stats().store_version, 0u);

  // No new records — the retry alone must land the pending snapshot.
  injector.SetFailReloads(false);
  EXPECT_TRUE(refresher.TickOnce().ok());
  serving::StoreRefresherStats rs = refresher.stats();
  EXPECT_EQ(rs.swaps, 1u);
  EXPECT_GE(rs.upserts, 1u);
  EXPECT_EQ(node.Stats().reloads, 1u);
  EXPECT_EQ(node.Stats().store_version, rs.store_version);
  EXPECT_GE(node.Stats().store_version, 1u);
  std::remove(log_path.c_str());
  node.set_fault_injector(nullptr);
}

TEST_F(FaultInjectionTest, HedgedRetryWinsOnSlowReplica) {
  SKIP_WITHOUT_FAULT_HOOKS();
  const size_t n = 3;
  ClusterConfig config = BaseConfig(n);
  config.replicate_hot = 1;
  config.failover.hedge_delay = std::chrono::microseconds(2000);
  ShardedCluster cl(*store_, testbed_,
                    &testbed_->recommender().popularity(), config);
  ASSERT_EQ(cl.replicated_keys().size(), 1u);
  const std::string hot = cl.replicated_keys().front();
  serving::ServingNode single(store_, testbed_, BaseConfig(1).node);
  const std::vector<DocId> reference = single.Serve(hot).ranking;

  // A fresh router's round-robin cursor starts at shard 0: make that
  // first pick pathologically slow (well past the hedge delay) and the
  // hedge must answer from the next replica, bit-identically.
  serving::ScriptedFaultInjector injector;
  cl.shard(0)->set_fault_injector(&injector);
  injector.SetStoreReadDelay(std::chrono::milliseconds(200));

  serving::ServeResult r = cl.ServeWithFailover(hot);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.hedged);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.ranking, reference);
  RouterStats rs = cl.router().stats();
  EXPECT_EQ(rs.hedges_launched, 1u);
  EXPECT_EQ(rs.hedges_won, 1u);
  EXPECT_TRUE(cl.router().breaker_transitions().empty())
      << "slow is not dead: no breaker activity";
  injector.SetStoreReadDelay(std::chrono::microseconds(0));
  cl.shard(0)->set_fault_injector(nullptr);
}

// ------------------------------------------------ miniature chaos run

TEST_F(FaultInjectionTest, MiniChaosScenarioIsDeterministicAndLossless) {
  SKIP_WITHOUT_FAULT_HOOKS();
  ChaosConfig chaos;
  chaos.requests = 240;
  chaos.seed = 4242;
  chaos.num_shards = 2;
  chaos.replicate_hot = 1;
  chaos.node = BaseConfig(1).node;
  chaos.slow_read_delay = std::chrono::microseconds(8000);
  chaos.schedule = DefaultChaosSchedule(chaos.requests, chaos.num_shards);
  ASSERT_FALSE(chaos.schedule.empty());

  const querylog::PopularityMap& popularity =
      testbed_->recommender().popularity();
  std::vector<std::string> mix = BuildChaosMix(popularity, chaos);
  ASSERT_EQ(mix.size(), chaos.requests);
  EXPECT_EQ(mix, BuildChaosMix(popularity, chaos)) << "mix must reseed";

  std::unordered_map<std::string, uint64_t> passthrough =
      BuildPassthroughHashes(testbed_, chaos.node, mix);

  ChaosConfig calm = chaos;
  calm.schedule.clear();
  ChaosReport no_fault =
      RunChaosScenario(*store_, testbed_, &popularity, mix, calm);
  ChaosReport run_a =
      RunChaosScenario(*store_, testbed_, &popularity, mix, chaos);
  ChaosReport run_b =
      RunChaosScenario(*store_, testbed_, &popularity, mix, chaos);

  EXPECT_TRUE(no_fault.transitions.empty());
  EXPECT_EQ(no_fault.degraded, 0u);

  ChaosVerdict verdict =
      VerifyChaosRuns(run_a, run_b, no_fault, mix, passthrough);
  EXPECT_EQ(verdict.dropped, 0u);
  EXPECT_EQ(verdict.outcome_mismatches, 0u);
  EXPECT_EQ(verdict.transition_mismatches, 0u);
  EXPECT_EQ(verdict.healthy_divergences, 0u);
  EXPECT_EQ(verdict.degraded_divergences, 0u);
  EXPECT_TRUE(verdict.breaker_opened);
  EXPECT_TRUE(verdict.ok());
  EXPECT_GT(run_a.degraded, 0u) << "the kill window must bite";
}

}  // namespace
}  // namespace cluster
}  // namespace optselect
