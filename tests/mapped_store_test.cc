// Tests for the mmap-able store format v4 and its serving lifecycle.
//
// Three layers of guarantees:
//
//   bytes  — WriteV4 → Map → Materialize round-trips content, plans,
//            and the store version bit-identically; mapped spans view
//            the exact term/weight/norm bits of their heap twins.
//   views  — FromMapped/MappedShard snapshots resolve lookups zero-copy
//            through EntryRef; shard views partition the file exactly
//            like SplitStore partitions a heap store; the mapping's
//            shared_ptr lifetime outlives any snapshot or unlink.
//   serving — a node on a mapped snapshot answers bit-identically to a
//            node on the equivalent heap snapshot, across the plan,
//            streaming, and passthrough paths; hot reload retires a
//            mapped snapshot RCU-style (pinned readers keep the old
//            pages); an injected reload fault leaves the node serving
//            the old mapping.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/testbed.h"
#include "serving/fault_injector.h"
#include "serving/serving_node.h"
#include "store/diversification_store.h"
#include "store/mapped_store.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/strings.h"

namespace optselect {
namespace store {
namespace {

StoredEntry MakeEntry(const std::string& root, size_t n_specs) {
  StoredEntry entry;
  entry.query = root;
  for (size_t s = 0; s < n_specs; ++s) {
    StoredSpecialization sp;
    sp.query = root + " mod" + std::to_string(s);
    sp.probability = 1.0 / static_cast<double>(n_specs);
    sp.surrogates.push_back(text::TermVector::FromEntries(
        {{static_cast<text::TermId>(10 * s), 1.0},
         {static_cast<text::TermId>(10 * s + 3), 0.5}}));
    if (s % 2 == 0) {
      sp.surrogates.push_back(text::TermVector::FromEntries(
          {{static_cast<text::TermId>(100 + s), 2.0}}));
    }
    entry.specializations.push_back(std::move(sp));
  }
  return entry;
}

QueryPlan MakePlan(const StoredEntry& entry, size_t n) {
  QueryPlan plan;
  const size_t m = entry.specializations.size();
  plan.num_candidates_requested = 100;
  plan.threshold_c = 0.0;
  for (size_t j = 0; j < m; ++j) {
    plan.probability.push_back(entry.specializations[j].probability);
    plan.spec_order.push_back(static_cast<uint32_t>(j));
  }
  for (size_t i = 0; i < n; ++i) {
    plan.docs.push_back(static_cast<DocId>(7 * i + 1));
    plan.relevance.push_back(1.0 / static_cast<double>(i + 1));
    for (size_t j = 0; j < m; ++j) {
      plan.utilities.push_back(static_cast<double>(i + j) * 0.125);
    }
    double w = 0.0;
    for (size_t j = 0; j < m; ++j) {
      w += plan.probability[j] * plan.utilities[i * m + j];
    }
    plan.weighted.push_back(w);
  }
  return plan;
}

DiversificationStore MakeStore() {
  DiversificationStore store;
  StoredEntry jaguar = MakeEntry("jaguar", 2);
  jaguar.plan = MakePlan(jaguar, 3);
  EXPECT_TRUE(store.Put(std::move(jaguar)).ok());
  EXPECT_TRUE(store.Put(MakeEntry("apple", 3)).ok());
  EXPECT_TRUE(store.Put(MakeEntry("phoenix", 4)).ok());
  EXPECT_TRUE(store.Put(MakeEntry("mercury", 2)).ok());
  store.set_version(21);
  return store;
}

std::string SaveToTemp(const DiversificationStore& store,
                       const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(store.Save(path).ok());
  return path;
}

// ------------------------------------------------------------- bytes

TEST(MappedStoreTest, MapMaterializeRoundTripsBitIdentically) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "roundtrip_v4.bin");

  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MappedStoreFile& file = *mapped.value();
  EXPECT_EQ(file.store_version(), 21u);
  EXPECT_EQ(file.entry_count(), store.size());

  DiversificationStore back = file.Materialize();
  EXPECT_EQ(back.version(), 21u);
  ASSERT_EQ(back.size(), store.size());
  for (const auto& [key, entry] : store.entries()) {
    const StoredEntry* re = back.Find(key);
    ASSERT_NE(re, nullptr) << key;
    EXPECT_TRUE(StoredEntriesEqual(*re, entry)) << key;
    ASSERT_EQ(re->plan.empty(), entry.plan.empty()) << key;
    if (!entry.plan.empty()) {
      EXPECT_EQ(re->plan.docs, entry.plan.docs);
      EXPECT_EQ(re->plan.relevance, entry.plan.relevance);
      EXPECT_EQ(re->plan.probability, entry.plan.probability);
      EXPECT_EQ(re->plan.spec_order, entry.plan.spec_order);
      EXPECT_EQ(re->plan.utilities, entry.plan.utilities);
      EXPECT_EQ(re->plan.weighted, entry.plan.weighted);
    }
  }
  std::remove(path.c_str());
}

TEST(MappedStoreTest, MappedSpansViewTheHeapBitsExactly) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "spans_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  for (const auto& [key, entry] : store.entries()) {
    const MappedEntry* me = mapped.value()->FindEntry(key);
    ASSERT_NE(me, nullptr) << key;
    EXPECT_EQ(me->key, key);
    EXPECT_EQ(me->query, entry.query);
    ASSERT_EQ(me->specializations.size(), entry.specializations.size());
    for (size_t j = 0; j < entry.specializations.size(); ++j) {
      const StoredSpecialization& hs = entry.specializations[j];
      const MappedSpecialization& ms = me->specializations[j];
      EXPECT_EQ(ms.query, hs.query);
      EXPECT_EQ(ms.probability, hs.probability);
      EXPECT_EQ(me->probability_column[j], hs.probability)
          << "probability column must duplicate the spec probabilities";
      ASSERT_EQ(ms.surrogates.size(), hs.surrogates.size());
      for (size_t r = 0; r < hs.surrogates.size(); ++r) {
        const text::TermVector& hv = hs.surrogates[r];
        const text::TermVectorSpan& span = ms.surrogates[r];
        ASSERT_EQ(span.size, hv.size());
        EXPECT_EQ(span.norm, hv.norm()) << "norm must carry exact bits";
        for (size_t t = 0; t < hv.size(); ++t) {
          EXPECT_EQ(span.terms[t], hv.entries()[t].first);
          EXPECT_EQ(span.weights[t], hv.entries()[t].second);
        }
      }
    }
  }
  EXPECT_EQ(mapped.value()->FindEntry("never stored"), nullptr);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- views

TEST(MappedStoreTest, FromMappedSnapshotFindsEntriesZeroCopy) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "snapshot_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok());

  auto snapshot = StoreSnapshot::FromMapped(mapped.value());
  EXPECT_TRUE(snapshot->mapped());
  EXPECT_EQ(snapshot->version(), 21u);
  EXPECT_EQ(snapshot->entry_count(), store.size());

  EntryRef ref = snapshot->Find("jaguar");
  ASSERT_TRUE(static_cast<bool>(ref));
  EXPECT_TRUE(ref.mapped());
  EXPECT_EQ(ref.num_specializations(), 2u);
  EXPECT_EQ(ref.spec_probability(0), 0.5);
  EXPECT_EQ(ref.heap_surrogates(0), nullptr);
  ASSERT_NE(ref.spec_spans(0), nullptr);
  EXPECT_TRUE(ref.HasCompatiblePlan(100, 0.0));
  EXPECT_FALSE(ref.HasCompatiblePlan(100, 0.5));
  EXPECT_FALSE(ref.HasCompatiblePlan(17, 0.0));
  EXPECT_EQ(ref.PlanNumCandidates(), 3u);
  EXPECT_EQ(ref.PlanNumSpecializations(), 2u);
  EXPECT_EQ(ref.PlanDocs()[0], 1u);

  EXPECT_FALSE(static_cast<bool>(snapshot->Find("never stored")));

  // ToProfiles materializes the same profile a heap entry produces.
  auto heap_profiles =
      DiversificationStore::ToProfiles(*store.Find("jaguar"));
  auto mapped_profiles = ref.ToProfiles();
  ASSERT_EQ(mapped_profiles.size(), heap_profiles.size());
  for (size_t j = 0; j < heap_profiles.size(); ++j) {
    EXPECT_EQ(mapped_profiles[j].probability, heap_profiles[j].probability);
    ASSERT_EQ(mapped_profiles[j].results.size(),
              heap_profiles[j].results.size());
    for (size_t r = 0; r < heap_profiles[j].results.size(); ++r) {
      EXPECT_EQ(mapped_profiles[j].results[r].entries(),
                heap_profiles[j].results[r].entries());
    }
  }

  // store() lazily materializes a heap copy with identical content.
  const DiversificationStore& lazy = snapshot->store();
  EXPECT_EQ(lazy.size(), store.size());
  EXPECT_EQ(lazy.version(), 21u);
  for (const auto& [key, entry] : store.entries()) {
    ASSERT_NE(lazy.Find(key), nullptr) << key;
    EXPECT_TRUE(StoredEntriesEqual(*lazy.Find(key), entry)) << key;
  }
  std::remove(path.c_str());
}

TEST(MappedStoreTest, MappedShardViewsPartitionTheStore) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "shards_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok());

  const size_t n = 3;
  std::vector<std::shared_ptr<const StoreSnapshot>> shards;
  std::vector<ShardFilter> filters(n);
  for (size_t i = 0; i < n; ++i) {
    filters[i].num_shards = n;
    filters[i].shard_index = i;
    shards.push_back(StoreSnapshot::MappedShard(
        mapped.value(), [filter = filters[i]](std::string_view key) {
          return filter.Keeps(key);
        }));
  }

  // Disjoint partition: every key on exactly one shard, and the shard
  // view agrees with both the filter and SplitStore's heap split.
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += shards[i]->entry_count();
    DiversificationStore heap_split = SplitStore(store, filters[i]);
    EXPECT_EQ(shards[i]->entry_count(), heap_split.size()) << i;
    for (const auto& [key, entry] : store.entries()) {
      EXPECT_EQ(static_cast<bool>(shards[i]->Find(key)),
                filters[i].Keeps(key))
          << "shard " << i << " key " << key;
    }
  }
  EXPECT_EQ(total, store.size());

  // Replication: a replicated key becomes visible on every shard.
  ShardFilter replicated = filters[0];
  replicated.replicated.insert("phoenix");
  auto replica_view = StoreSnapshot::MappedShard(
      mapped.value(), [replicated](std::string_view key) {
        return replicated.Keeps(key);
      });
  EXPECT_TRUE(static_cast<bool>(replica_view->Find("phoenix")));

  // A shard's lazy store() materializes only its slice.
  const DiversificationStore& slice = shards[0]->store();
  EXPECT_EQ(slice.size(), shards[0]->entry_count());
  std::remove(path.c_str());
}

TEST(MappedStoreTest, LooksLikeV4DistinguishesLegacyFromV4) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "magic_v4.bin");
  EXPECT_TRUE(MappedStoreFile::LooksLikeV4(path));

  // A legacy/garbage file is "not ours to map", not corruption.
  std::string legacy = ::testing::TempDir() + "/magic_legacy.bin";
  std::FILE* f = std::fopen(legacy.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("OSTORE2 something else entirely", f);
  std::fclose(f);
  EXPECT_FALSE(MappedStoreFile::LooksLikeV4(legacy));
  EXPECT_FALSE(MappedStoreFile::LooksLikeV4(path + ".does-not-exist"));

  // A truncated v4 file still *claims* v4 — Map must reject it, and the
  // claim is what turns that rejection into a hard error upstream.
  std::string truncated = ::testing::TempDir() + "/magic_truncated.bin";
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::ofstream out(truncated, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_TRUE(MappedStoreFile::LooksLikeV4(truncated));
  EXPECT_FALSE(MappedStoreFile::Map(truncated).ok());

  std::remove(path.c_str());
  std::remove(legacy.c_str());
  std::remove(truncated.c_str());
}

TEST(MappedStoreTest, MissingPlanCountMatchesServingCompatibility) {
  DiversificationStore store = MakeStore();  // only "jaguar" has a plan
  std::string path = SaveToTemp(store, "plans_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok());

  // The plan was compiled at candidates=100, c=0.0 (MakePlan).
  EXPECT_EQ(mapped.value()->MissingPlanCount(100, 0.0), store.size() - 1);
  // Mismatched serving params make every entry plan-less.
  EXPECT_EQ(mapped.value()->MissingPlanCount(100, 0.5), store.size());
  EXPECT_EQ(mapped.value()->MissingPlanCount(42, 0.0), store.size());
  std::remove(path.c_str());
}

TEST(MappedStoreTest, WarmupAppliesAndFallsBackGracefully) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "warmup_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok());

  MapWarmupOutcome none = mapped.value()->Warm(MapWarmup::kNone);
  EXPECT_EQ(none.applied, MapWarmup::kNone);
  EXPECT_FALSE(none.fell_back);

  MapWarmupOutcome madvised = mapped.value()->Warm(MapWarmup::kMadvise);
  EXPECT_EQ(madvised.applied, MapWarmup::kMadvise);
  EXPECT_FALSE(madvised.fell_back);

  // mlock either pins the pages or (RLIMIT_MEMLOCK / no CAP_IPC_LOCK)
  // falls back to madvise with the refusal recorded — never a failure.
  MapWarmupOutcome locked = mapped.value()->Warm(MapWarmup::kMlock);
  if (locked.fell_back) {
    EXPECT_EQ(locked.applied, MapWarmup::kMadvise);
    EXPECT_FALSE(locked.detail.empty());
  } else {
    EXPECT_EQ(locked.applied, MapWarmup::kMlock);
  }
  // Warmed or not, the mapping serves identically.
  EXPECT_NE(mapped.value()->FindEntry("jaguar"), nullptr);

  MapWarmup parsed = MapWarmup::kNone;
  EXPECT_TRUE(ParseMapWarmup("madvise", &parsed));
  EXPECT_EQ(parsed, MapWarmup::kMadvise);
  EXPECT_TRUE(ParseMapWarmup("mlock", &parsed));
  EXPECT_EQ(parsed, MapWarmup::kMlock);
  EXPECT_TRUE(ParseMapWarmup("none", &parsed));
  EXPECT_EQ(parsed, MapWarmup::kNone);
  EXPECT_FALSE(ParseMapWarmup("always", &parsed));
  EXPECT_FALSE(ParseMapWarmup("", &parsed));
  std::remove(path.c_str());
}

TEST(MappedStoreTest, MappingOutlivesSnapshotsAndUnlink) {
  DiversificationStore store = MakeStore();
  std::string path = SaveToTemp(store, "lifetime_v4.bin");
  auto mapped = MappedStoreFile::Map(path);
  ASSERT_TRUE(mapped.ok());

  // Unlink the file: POSIX keeps the pages alive while mapped — exactly
  // how a builder can replace store.bin under a serving node.
  ASSERT_EQ(std::remove(path.c_str()), 0);

  std::shared_ptr<const MappedStoreFile> file = mapped.value();
  auto snapshot = StoreSnapshot::FromMapped(file);
  EntryRef ref = snapshot->Find("apple");
  ASSERT_TRUE(static_cast<bool>(ref));

  // Retire the snapshot; the caller's shared_ptr keeps the mapping (and
  // with it every span the ref hands out) valid.
  snapshot.reset();
  const MappedEntry* entry = file->FindEntry("apple");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->specializations.size(), 3u);
  EXPECT_EQ(entry->specializations[0].surrogates[0].weights[0], 1.0);
}

// ----------------------------------------------------------- serving

class MappedServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new pipeline::Testbed(pipeline::TestbedConfig::Small());
    store_ = new DiversificationStore();
    std::vector<std::string> roots;
    for (const auto& topic : testbed_->universe().topics) {
      roots.push_back(topic.root_query);
    }
    BuildStore(testbed_->detector(), testbed_->searcher(),
               testbed_->snippets(), testbed_->analyzer(),
               testbed_->corpus().store, roots, {}, store_);
    ASSERT_GE(store_->size(), 2u);
    store_->set_version(5);
    path_ = new std::string(::testing::TempDir() + "/serving_v4.bin");
    ASSERT_TRUE(store_->Save(*path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete store_;
    delete testbed_;
    path_ = nullptr;
    store_ = nullptr;
    testbed_ = nullptr;
  }

  static serving::ServingConfig Config() {
    serving::ServingConfig config;
    config.num_workers = 2;
    config.queue_capacity = 256;
    config.enable_cache = false;  // compare computed rankings, not cache
    config.params.num_candidates = 100;
    config.params.diversify.k = 10;
    return config;
  }

  static std::unique_ptr<serving::ServingNode> MakeNode(
      std::shared_ptr<const StoreSnapshot> snapshot) {
    return std::make_unique<serving::ServingNode>(
        std::move(snapshot), &testbed_->searcher(), &testbed_->snippets(),
        &testbed_->analyzer(), &testbed_->corpus().store, Config());
  }

  static pipeline::Testbed* testbed_;
  static DiversificationStore* store_;
  static std::string* path_;
};

pipeline::Testbed* MappedServingTest::testbed_ = nullptr;
DiversificationStore* MappedServingTest::store_ = nullptr;
std::string* MappedServingTest::path_ = nullptr;

TEST_F(MappedServingTest, MappedServingIsBitIdenticalToHeap) {
  auto loaded = DiversificationStore::Load(*path_);
  ASSERT_TRUE(loaded.ok());
  auto mapped = MappedStoreFile::Map(*path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  auto heap_node = MakeNode(StoreSnapshot::Own(std::move(loaded).value()));
  auto mapped_node = MakeNode(StoreSnapshot::FromMapped(mapped.value()));

  // Every stored (ambiguous ⇒ diversified, streaming or plan) query and
  // a noise (passthrough) query must answer identically.
  std::vector<std::string> queries;
  for (const auto& [key, entry] : store_->entries()) queries.push_back(key);
  queries.push_back(testbed_->universe().noise_queries[0]);

  size_t diversified = 0;
  for (const std::string& q : queries) {
    serving::ServeResult heap_result = heap_node->Serve(q);
    serving::ServeResult mapped_result = mapped_node->Serve(q);
    ASSERT_TRUE(heap_result.ok) << q;
    ASSERT_TRUE(mapped_result.ok) << q;
    EXPECT_EQ(mapped_result.diversified, heap_result.diversified) << q;
    EXPECT_EQ(mapped_result.plan_served, heap_result.plan_served) << q;
    EXPECT_EQ(mapped_result.ranking, heap_result.ranking) << q;
    if (heap_result.diversified) ++diversified;
  }
  EXPECT_GE(diversified, 2u) << "test must exercise the diversified path";
  EXPECT_EQ(mapped_node->Stats().store_version,
            heap_node->Stats().store_version);
}

TEST_F(MappedServingTest, SlicedServingZeroCopyMatchesHeapSplit) {
  // The `serve --listen --shard-index I --num-shards N` regression: a
  // shard process must serve a MappedShard view over the one shared
  // mapping, bit-identical to the heap SplitStore slice it replaced.
  std::shared_ptr<const MappedStoreFile> file;
  {
    auto mapped = MappedStoreFile::Map(*path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    file = mapped.value();
  }
  std::weak_ptr<const MappedStoreFile> watch = file;

  const size_t num_shards = 2;
  std::vector<std::string> queries;
  for (const auto& [key, entry] : store_->entries()) queries.push_back(key);
  queries.push_back(testbed_->universe().noise_queries[0]);

  size_t diversified = 0;
  std::vector<std::shared_ptr<const StoreSnapshot>> views;
  for (size_t i = 0; i < num_shards; ++i) {
    ShardFilter filter;
    filter.num_shards = num_shards;
    filter.shard_index = i;
    auto view = StoreSnapshot::MappedShard(
        file, [filter](std::string_view key) { return filter.Keeps(key); });
    DiversificationStore slice = SplitStore(*store_, filter);
    ASSERT_EQ(view->entry_count(), slice.size()) << i;

    auto mapped_node = MakeNode(view);
    auto heap_node = MakeNode(StoreSnapshot::Own(std::move(slice)));
    ASSERT_TRUE(mapped_node->snapshot()->mapped());
    // The view shares the caller's mapping — no remap, no copy.
    EXPECT_EQ(mapped_node->snapshot()->mapped_file().get(), file.get());

    // Every query (owned here, owned elsewhere, never stored) answers
    // bit-identically: misses pass through, hits serve off the slice.
    for (const std::string& q : queries) {
      serving::ServeResult from_view = mapped_node->Serve(q);
      serving::ServeResult from_copy = heap_node->Serve(q);
      ASSERT_TRUE(from_view.ok) << q;
      ASSERT_TRUE(from_copy.ok) << q;
      EXPECT_EQ(from_view.diversified, from_copy.diversified) << q;
      EXPECT_EQ(from_view.plan_served, from_copy.plan_served) << q;
      EXPECT_EQ(from_view.ranking, from_copy.ranking) << q;
      if (from_view.diversified) ++diversified;
    }
    views.push_back(mapped_node->snapshot());
  }
  EXPECT_GE(diversified, 2u) << "slices must exercise the diversified path";

  // Both shard views pin the one mapping; it stays alive past the
  // caller's handle and dies only when the last view drops.
  file.reset();
  EXPECT_FALSE(watch.expired());
  views.clear();
  EXPECT_TRUE(watch.expired());
}

TEST_F(MappedServingTest, SharedShardViewsSurviveUnlinkAndReload) {
  // Two "processes" (nodes) over one mapping: the store file vanishes
  // under them, one hot-reloads away — the other keeps serving off the
  // shared pages until it is the last reader.
  std::string copy = ::testing::TempDir() + "/serving_unlink_v4.bin";
  ASSERT_TRUE(store_->Save(copy).ok());
  std::shared_ptr<const MappedStoreFile> file;
  {
    auto mapped = MappedStoreFile::Map(copy);
    ASSERT_TRUE(mapped.ok());
    file = mapped.value();
  }
  std::weak_ptr<const MappedStoreFile> watch = file;

  // An even/odd key split (rather than the hash partition, tested
  // above) guarantees both views are non-empty for any store >= 2.
  std::vector<std::string> keys;
  for (const auto& [key, entry] : store_->entries()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::unordered_set<std::string> evens;
  for (size_t i = 0; i < keys.size(); i += 2) evens.insert(keys[i]);
  auto node0 = MakeNode(StoreSnapshot::MappedShard(
      file, [evens](std::string_view key) {
        return evens.count(std::string(key)) > 0;
      }));
  auto node1 = MakeNode(StoreSnapshot::MappedShard(
      file, [evens](std::string_view key) {
        return evens.count(std::string(key)) == 0;
      }));
  const std::string key0 = keys[0];
  const std::string key1 = keys[1];
  file.reset();  // nodes now hold the only references

  // A builder replacing store.bin unlinks it under the fleet; POSIX
  // keeps the mapped pages alive for every process still serving.
  ASSERT_EQ(std::remove(copy.c_str()), 0);
  EXPECT_TRUE(node0->Serve(key0).diversified);
  EXPECT_TRUE(node1->Serve(key1).diversified);

  // Shard 0 RCU-reloads onto a heap snapshot: the mapping must survive
  // for shard 1, then release once shard 1 drops too.
  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("reload probe query", 2));
  SnapshotBuildResult built =
      BuildSnapshot(node0->snapshot().get(), delta);
  ASSERT_TRUE(node0->ReloadStore(built.snapshot, built.changed_keys).ok);
  EXPECT_FALSE(node0->snapshot()->mapped());
  EXPECT_FALSE(watch.expired())
      << "shard 1 still serves off the shared mapping";
  EXPECT_TRUE(node1->Serve(key1).diversified);

  node0.reset();
  EXPECT_FALSE(watch.expired());
  node1.reset();
  EXPECT_TRUE(watch.expired())
      << "the last shard view must release the mapping";
}

TEST_F(MappedServingTest, HotReloadRetiresMappedSnapshotRcuStyle) {
  std::shared_ptr<const MappedStoreFile> file;
  {
    auto mapped = MappedStoreFile::Map(*path_);
    ASSERT_TRUE(mapped.ok());
    file = mapped.value();
  }
  std::weak_ptr<const MappedStoreFile> watch = file;
  auto node = MakeNode(StoreSnapshot::FromMapped(file));
  std::string stored_key = store_->entries().begin()->first;

  // A "request in flight": pin the mapped snapshot like a worker batch
  // does, and hold a span into the mapped pages across the swap.
  std::shared_ptr<const StoreSnapshot> pinned = node->snapshot();
  EntryRef pinned_ref = pinned->Find(stored_key);
  ASSERT_TRUE(pinned_ref.mapped());
  const std::vector<text::TermVectorSpan>* spans = pinned_ref.spec_spans(0);
  ASSERT_NE(spans, nullptr);

  // Swap to a delta-built heap snapshot (the refresher path: the mapped
  // base materializes lazily inside BuildSnapshot).
  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("brand new query", 2));
  SnapshotBuildResult built = BuildSnapshot(pinned.get(), delta);
  ASSERT_EQ(built.changed_keys.size(), 1u);
  serving::ServingNode::ReloadOutcome outcome =
      node->ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.new_version, 6u);

  // The pinned snapshot still reads the old mapped pages after the
  // swap; new requests see the new content.
  EXPECT_EQ(pinned->version(), 5u);
  ASSERT_FALSE(spans->empty());
  EXPECT_GT((*spans)[0].size, 0u);
  EXPECT_TRUE(static_cast<bool>(node->snapshot()->Find("brand new query")));

  // Drop every reference: node's new snapshot is heap-backed, and the
  // local shared_ptrs go away — the mapping must actually unmap (the
  // RCU reclamation point).
  file.reset();
  pinned.reset();
  node.reset();
  EXPECT_TRUE(watch.expired())
      << "dropping the last reader must release the mapping";
}

TEST_F(MappedServingTest, ReloadFaultLeavesNodeOnOldMapping) {
  if (!serving::FaultInjectionCompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  auto mapped = MappedStoreFile::Map(*path_);
  ASSERT_TRUE(mapped.ok());
  auto node = MakeNode(StoreSnapshot::FromMapped(mapped.value()));
  std::string stored_key = store_->entries().begin()->first;

  serving::ScriptedFaultInjector injector;
  node->set_fault_injector(&injector);
  injector.SetFailReloads(true);

  StoreDelta delta;
  delta.upserts.push_back(MakeEntry("chaos query", 2));
  SnapshotBuildResult built =
      BuildSnapshot(node->snapshot().get(), delta);
  serving::ServingNode::ReloadOutcome refused =
      node->ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_FALSE(refused.ok);

  // The refused swap leaves the node on the mapped snapshot, still
  // serving correctly off the mapped pages.
  EXPECT_TRUE(node->snapshot()->mapped());
  EXPECT_EQ(node->snapshot()->version(), 5u);
  serving::ServeResult result = node->Serve(stored_key);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.diversified);

  // Clearing the fault lets the retry land.
  injector.SetFailReloads(false);
  serving::ServingNode::ReloadOutcome landed =
      node->ReloadStore(built.snapshot, built.changed_keys);
  EXPECT_TRUE(landed.ok);
  EXPECT_FALSE(node->snapshot()->mapped());
  EXPECT_EQ(node->snapshot()->version(), 6u);
  node->set_fault_injector(nullptr);
}

}  // namespace
}  // namespace store
}  // namespace optselect
