// Tests for TREC-format interchange: topics, diversity qrels, run files.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "eval/trec_io.h"

namespace optselect {
namespace eval {
namespace {

corpus::TopicSet MakeTopics() {
  corpus::TopicSet topics;
  corpus::TrecTopic t1;
  t1.id = 1;
  t1.query = "obama family tree";
  t1.subtopics.resize(3);
  t1.subtopics[0].query = "obama family tree photo essay";
  t1.subtopics[1].query = "obama parents grandparents";
  t1.subtopics[2].query = "obama mother biography";
  topics.Add(t1);
  corpus::TrecTopic t2;
  t2.id = 2;
  t2.query = "jaguar";
  t2.subtopics.resize(2);
  t2.subtopics[0].query = "jaguar car";
  t2.subtopics[1].query = "jaguar animal";
  topics.Add(t2);
  return topics;
}

TEST(TrecTopicsIoTest, RoundTrip) {
  corpus::TopicSet topics = MakeTopics();
  std::string path = ::testing::TempDir() + "/topics.tsv";
  ASSERT_TRUE(SaveTopics(topics, path).ok());

  auto loaded = LoadTopics(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const corpus::TopicSet& l = loaded.value();
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l.topic(0).id, 1u);
  EXPECT_EQ(l.topic(0).query, "obama family tree");
  ASSERT_EQ(l.topic(0).subtopics.size(), 3u);
  EXPECT_EQ(l.topic(0).subtopics[1].query, "obama parents grandparents");
  // Uniform probabilities assigned on load.
  EXPECT_NEAR(l.topic(0).subtopics[0].probability, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(l.topic(1).subtopics.size(), 2u);
  std::remove(path.c_str());
}

TEST(TrecTopicsIoTest, RejectsMalformedLines) {
  std::string path = ::testing::TempDir() + "/topics_bad.tsv";
  {
    std::ofstream out(path);
    out << "1\tonly two fields\n";
  }
  auto r = LoadTopics(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TrecQrelsIoTest, RoundTrip) {
  corpus::Qrels qrels;
  qrels.Add(1, 0, 100, 2);
  qrels.Add(1, 1, 101, 1);
  qrels.Add(1, 2, 102, 1);
  qrels.Add(2, 0, 200, 1);
  qrels.Add(2, 1, 200, 1);

  std::string path = ::testing::TempDir() + "/qrels.txt";
  ASSERT_TRUE(SaveQrels(qrels, MakeTopics(), path).ok());

  auto loaded = LoadQrels(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const corpus::Qrels& l = loaded.value();
  EXPECT_EQ(l.Grade(1, 0, 100), 2);
  EXPECT_EQ(l.Grade(1, 1, 101), 1);
  EXPECT_EQ(l.Grade(2, 0, 200), 1);
  EXPECT_EQ(l.Grade(2, 1, 200), 1);
  EXPECT_EQ(l.Grade(2, 1, 999), 0);
  EXPECT_EQ(l.size(), qrels.size());
  std::remove(path.c_str());
}

TEST(TrecQrelsIoTest, RejectsShortLines) {
  std::string path = ::testing::TempDir() + "/qrels_bad.txt";
  {
    std::ofstream out(path);
    out << "1 0 100\n";  // missing grade
  }
  auto r = LoadQrels(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(TrecRunIoTest, RoundTrip) {
  ::optselect::eval::Run run;
  run.name = "optselect-c030";
  run.rankings[1] = {10, 11, 12};
  run.rankings[2] = {20, 21};

  std::string path = ::testing::TempDir() + "/run.txt";
  ASSERT_TRUE(SaveRun(run, path).ok());

  auto loaded = LoadRun(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ::optselect::eval::Run& l = loaded.value();
  EXPECT_EQ(l.name, "optselect-c030");
  ASSERT_EQ(l.rankings.size(), 2u);
  EXPECT_EQ(l.rankings.at(1), (std::vector<DocId>{10, 11, 12}));
  EXPECT_EQ(l.rankings.at(2), (std::vector<DocId>{20, 21}));
  std::remove(path.c_str());
}

TEST(TrecRunIoTest, FormatIsSixColumnTrec) {
  ::optselect::eval::Run run;
  run.name = "tag";
  run.rankings[7] = {42};
  std::string path = ::testing::TempDir() + "/run_fmt.txt";
  ASSERT_TRUE(SaveRun(run, path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "7 Q0 42 1 1.000000 tag");
  std::remove(path.c_str());
}

TEST(TrecRunIoTest, RejectsDuplicateRanks) {
  std::string path = ::testing::TempDir() + "/run_dup.txt";
  {
    std::ofstream out(path);
    out << "1 Q0 10 1 1.0 t\n";
    out << "1 Q0 11 1 0.9 t\n";
  }
  auto r = LoadRun(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TrecRunIoTest, RejectsMissingQ0) {
  std::string path = ::testing::TempDir() + "/run_q0.txt";
  {
    std::ofstream out(path);
    out << "1 XX 10 1 1.0 t\n";
  }
  auto r = LoadRun(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(TrecRunIoTest, RanksRestoreOrderRegardlessOfLineOrder) {
  std::string path = ::testing::TempDir() + "/run_shuffled.txt";
  {
    std::ofstream out(path);
    out << "1 Q0 12 3 0.3 t\n";
    out << "1 Q0 10 1 1.0 t\n";
    out << "1 Q0 11 2 0.5 t\n";
  }
  auto r = LoadRun(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rankings.at(1), (std::vector<DocId>{10, 11, 12}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eval
}  // namespace optselect
