#!/usr/bin/env python3
"""Metrics-exposition gate for CI.

Validates a Prometheus text-format dump produced by
``optselect loadtest --metrics-out FILE`` (or ``optselect stats
--format prom``), i.e. the output of obs::MetricsRegistry::
RenderPrometheus():

  1. the file is well-formed exposition text — every non-comment line
     is ``name{label="v",...} value`` with a legal metric name, legal
     label names, correctly quoted label values, and a finite value;
  2. every sample's base metric name (stripping the ``_sum`` /
     ``_count`` summary suffixes) was declared by a preceding
     ``# TYPE`` line, and no name is declared twice;
  3. the serving/router metrics the dashboards key on are present:
     ``optselect_serving_accepted_total``,
     ``optselect_serving_completed_total``,
     ``optselect_request_latency_seconds`` (with _sum/_count), and
     ``optselect_router_routed_total`` when --require-router;
  4. snapshot coherence: for every label set,
     completed <= accepted must hold — the registry reads effects
     before causes, so a violating dump means that ordering broke;
  5. with ``--require-stages`` (the tracing=ON CI row), the
     ``optselect_stage_latency_seconds`` summary must be present with
     a nonzero _count for every lifecycle stage label:
     queue_wait, cache_lookup, store_read, select, reply.

Usage: check_metrics.py FILE [--require-stages] [--require-router]

Exit code 0 when clean, 1 with one line per finding otherwise.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  |  name value   (exposition has no timestamps here)
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                       r"(counter|gauge|summary|histogram|untyped)$")

REQUIRED = (
    "optselect_serving_accepted_total",
    "optselect_serving_completed_total",
    "optselect_request_latency_seconds",
    "optselect_request_latency_seconds_sum",
    "optselect_request_latency_seconds_count",
)
STAGES = ("queue_wait", "cache_lookup", "store_read", "select", "reply")


def parse_labels(raw, lineno, problems):
    """'a="x",b="y"' -> dict; label values may contain \\" \\\\ \\n."""
    labels = {}
    # Split on commas not preceded by an odd run of backslashes inside
    # quotes: simplest correct approach is a small scanner.
    i, n = 0, len(raw)
    while i < n:
        m = LABEL_NAME.match(raw[i:].split("=", 1)[0])
        eq = raw.find("=", i)
        if eq < 0 or m is None:
            problems.append(f"line {lineno}: bad label name in '{raw}'")
            return labels
        name = raw[i:eq]
        if not LABEL_NAME.match(name):
            problems.append(f"line {lineno}: bad label name '{name}'")
            return labels
        if eq + 1 >= n or raw[eq + 1] != '"':
            problems.append(f"line {lineno}: unquoted value for '{name}'")
            return labels
        j = eq + 2
        value = []
        while j < n:
            c = raw[j]
            if c == "\\" and j + 1 < n:
                value.append({"n": "\n", '"': '"', "\\": "\\"}.get(
                    raw[j + 1], raw[j + 1]))
                j += 2
                continue
            if c == '"':
                break
            value.append(c)
            j += 1
        if j >= n:
            problems.append(f"line {lineno}: unterminated value for '{name}'")
            return labels
        labels[name] = "".join(value)
        i = j + 1
        if i < n:
            if raw[i] != ",":
                problems.append(f"line {lineno}: expected ',' after "
                                f"'{name}' value")
                return labels
            i += 1
    return labels


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path")
    parser.add_argument("--require-stages", action="store_true",
                        help="assert per-stage latency summaries (needs a "
                             "-DOPTSELECT_TRACING=ON build)")
    parser.add_argument("--require-router", action="store_true",
                        help="assert router metrics (needs a cluster run, "
                             "i.e. loadtest --shards >= 1)")
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    problems = []
    declared = {}          # metric name -> type
    samples = []           # (name, labels, value)
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = TYPE_LINE.match(line)
                if not m:
                    problems.append(f"line {lineno}: malformed TYPE line")
                    continue
                name = m.group(1)
                if name in declared:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for '{name}'")
                declared[name] = m.group(2)
            continue  # HELP/other comments are fine
        m = SAMPLE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, _, rawlabels, rawvalue = m.groups()
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if base.endswith(suffix) and base[: -len(suffix)] in declared:
                base = base[: -len(suffix)]
                break
        if base not in declared:
            problems.append(
                f"line {lineno}: sample '{name}' has no preceding TYPE")
        labels = parse_labels(rawlabels, lineno, problems) if rawlabels \
            else {}
        try:
            value = float(rawvalue)
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {rawvalue!r}")
            continue
        if not math.isfinite(value):
            problems.append(f"line {lineno}: non-finite value for '{name}'")
            continue
        if declared.get(base) == "counter" and value < 0:
            problems.append(f"line {lineno}: negative counter '{name}'")
        samples.append((name, labels, value))

    present = {s[0] for s in samples}
    for name in REQUIRED:
        if name not in present:
            problems.append(f"required metric missing: {name}")
    if args.require_router and "optselect_router_routed_total" not in present:
        problems.append("required metric missing: "
                        "optselect_router_routed_total")

    # Coherence: completed <= accepted per label set (effect <= cause).
    def by_labels(metric):
        return {tuple(sorted(l.items())): v
                for n, l, v in samples if n == metric}
    accepted = by_labels("optselect_serving_accepted_total")
    for key, completed in by_labels(
            "optselect_serving_completed_total").items():
        if key in accepted and completed > accepted[key]:
            problems.append(
                f"completed {completed:g} > accepted {accepted[key]:g} "
                f"for labels {dict(key)}")

    if args.require_stages:
        counts = {}
        for name, labels, value in samples:
            if name == "optselect_stage_latency_seconds_count":
                stage = labels.get("stage", "")
                counts[stage] = counts.get(stage, 0) + value
        for stage in STAGES:
            if counts.get(stage, 0) <= 0:
                problems.append(
                    f"stage '{stage}' has no recorded latency samples "
                    f"(tracing off, or the stage never ran)")

    for p in problems:
        print(p)
    print(f"checked {len(samples)} samples, {len(declared)} metrics, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
