#!/usr/bin/env python3
"""Bench-regression gate for CI.

Compares the ``BENCH_*.json`` files emitted by the Release bench smokes
(bench::BenchJsonWriter output) against the checked-in baselines in
``bench/baselines/``. For every baseline file the emitted counterpart
must exist, and for every baseline record (matched by ``name``):

  1. correctness counters in the *emitted* record must be zero —
     ``failures``, ``mismatches``, ``pinned_mismatches`` are gates, not
     metrics (the bench binaries also exit non-zero on them; this
     catches a bench that someone downgraded to warn-only);
  2. ``qps`` must be at least baseline ``qps`` / slack;
  3. ``wall_ms`` and every params key ending in ``_ms`` (p50_ms,
     p99_ms, ...) must be at most baseline x slack.

Slack defaults to 4.0: CI hardware differs from the machine that
recorded the baselines, so this gate is tuned to catch order-of-
magnitude regressions — a lost compiled-plan fast path, a serialized
worker pool, a cache that stopped hitting — not single-digit noise.
Tighten or relax per run with ``--slack`` (or env ``BENCH_SLACK``), or
per baseline file by hand-adding a top-level object the bench writer
never emits:

    "gate": { "slack": 2.5, "skip": ["record name", ...] }

Input/output params that are neither qps nor ``*_ms`` (workers,
requests, swaps, hw_threads, ...) are never compared: they describe the
run, they do not judge it. Likewise unknown top-level keys — such as
the ``metrics`` registry snapshot the writers embed — are ignored:
only ``records`` (and ``gate`` in baselines) are read.

Usage: check_bench.py [--emitted-dir DIR] [--baseline-dir DIR]
                      [--slack X] [--update]

``--update`` copies the emitted files over the baselines instead of
checking (for refreshing baselines deliberately, then committing).

Exit code 0 when clean, 1 with one line per finding otherwise.
"""

import argparse
import glob
import json
import os
import shutil
import sys

CORRECTNESS_KEYS = ("failures", "mismatches", "pinned_mismatches")
DEFAULT_SLACK = 4.0


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def records_by_name(doc):
    return {r["name"]: r for r in doc.get("records", [])}


def check_file(baseline_path, emitted_path, slack, problems):
    base_doc = load(baseline_path)
    gate = base_doc.get("gate", {})
    slack = float(gate.get("slack", slack))
    skip = set(gate.get("skip", []))
    rel = os.path.basename(emitted_path)

    if not os.path.exists(emitted_path):
        problems.append(f"{rel}: not emitted (did the smoke step run?)")
        return
    emitted = records_by_name(load(emitted_path))

    for name, base in records_by_name(base_doc).items():
        if name in skip:
            continue
        cur = emitted.get(name)
        if cur is None:
            problems.append(f"{rel}[{name}]: record missing from emitted file")
            continue
        cur_params = cur.get("params", {})
        base_params = base.get("params", {})

        for key in CORRECTNESS_KEYS:
            if key in cur_params and cur_params[key] != 0:
                problems.append(
                    f"{rel}[{name}]: {key} = {cur_params[key]:g} (must be 0)")

        base_qps = base.get("qps", 0)
        if base_qps > 0 and cur.get("qps", 0) < base_qps / slack:
            problems.append(
                f"{rel}[{name}]: qps {cur.get('qps', 0):g} < baseline "
                f"{base_qps:g} / {slack:g}")

        latencies = [("wall_ms", base.get("wall_ms", 0),
                      cur.get("wall_ms", 0))]
        latencies += [(k, base_params[k], cur_params.get(k, 0))
                      for k in base_params
                      if k.endswith("_ms") and k in cur_params]
        for key, base_v, cur_v in latencies:
            if base_v > 0 and cur_v > base_v * slack:
                problems.append(
                    f"{rel}[{name}]: {key} {cur_v:g} > baseline "
                    f"{base_v:g} x {slack:g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--emitted-dir", default=".")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--slack", type=float,
                        default=float(os.environ.get("BENCH_SLACK",
                                                     DEFAULT_SLACK)))
    parser.add_argument("--update", action="store_true",
                        help="copy emitted files over the baselines")
    args = parser.parse_args()

    baselines = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print(f"no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    if args.update:
        for baseline in baselines:
            emitted = os.path.join(args.emitted_dir,
                                   os.path.basename(baseline))
            if os.path.exists(emitted):
                shutil.copyfile(emitted, baseline)
                print(f"updated {baseline}")
            else:
                print(f"skipped {baseline} (no emitted file)")
        return 0

    problems = []
    for baseline in baselines:
        emitted = os.path.join(args.emitted_dir, os.path.basename(baseline))
        check_file(baseline, emitted, args.slack, problems)

    for p in problems:
        print(p)
    print(f"checked {len(baselines)} baseline file(s), "
          f"{len(problems)} regression(s) (slack {args.slack:g}x)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
