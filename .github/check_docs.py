#!/usr/bin/env python3
"""Docs lint for CI: no broken relative links, no dangling references.

Checks every tracked *.md file:
  1. relative markdown links [text](path) resolve to an existing file
     or directory (http/https/mailto links are skipped);
  2. heading anchors referenced as path#anchor exist in the target file
     (GitHub-style slugs: lowercase, spaces -> '-', punctuation dropped);
  3. fenced code blocks are balanced (an odd number of ``` fences means
     a broken render).

Exit code 0 when clean, 1 with one line per finding otherwise.
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def tracked_markdown() -> list:
    out = subprocess.run(["git", "ls-files", "*.md"], capture_output=True,
                         text=True, check=True)
    return [line for line in out.stdout.splitlines() if line]


def main() -> int:
    problems = []
    for md in tracked_markdown():
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            text = f.read()

        if text.count("```") % 2 != 0:
            problems.append(f"{md}: unbalanced ``` code fence")

        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, anchor = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, path)) if path \
                else md
            if not os.path.exists(resolved):
                problems.append(f"{md}: broken link -> {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor not in anchors_of(resolved):
                    problems.append(f"{md}: missing anchor -> {target}")

    for p in problems:
        print(p)
    print(f"checked {len(tracked_markdown())} markdown files, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
