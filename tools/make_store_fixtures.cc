// Regenerates the golden store.bin fixtures under tests/data/.
//
//   optselect_make_fixtures <out_dir>
//
// Writes store_v1.bin, store_v2.bin, store_v3.bin, and store_v4.bin
// with the *same* hand-chosen mined content (two entries, fixed
// probabilities and surrogate vectors) in each of the four on-disk
// formats the loader supports. The v1/v2 writers below are the only
// place those legacy layouts are still spelled out byte-for-byte; v3
// goes through the frozen SaveLegacyV3 writer and v4 through Save (the
// current mmap-able columnar layout). The bytes are checked in and the
// formats are frozen by tests/store_backcompat_test.cc, which also
// asserts that Save() still reproduces store_v4.bin exactly.
//
// Rerun this tool and re-commit the outputs only when the format
// legitimately changes (a v5): silently regenerating the older files
// would defeat the point of the freeze.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "store/diversification_store.h"
#include "store/query_plan.h"
#include "util/hash.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

// The legacy checksum basis v1 files were written with (see
// store/diversification_store.cc).
constexpr uint64_t kV1ChecksumBasis = 1469598103934665603ull;

struct BodyWriter {
  std::string body;
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    body.append(s);
  }
  void Raw(const void* p, size_t n) {
    body.append(static_cast<const char*>(p), n);
  }
};

/// The golden mined content, shared by all three fixtures. Every value
/// is spelled out here and re-asserted literally by the backcompat
/// test — keep the two in sync.
std::vector<store::StoredEntry> GoldenEntries() {
  std::vector<store::StoredEntry> entries;

  store::StoredEntry jaguar;
  jaguar.query = "jaguar";
  {
    store::StoredSpecialization car;
    car.query = "jaguar car";
    car.probability = 0.6;
    car.surrogates.push_back(text::TermVector::FromEntries({{42, 1.5}}));
    jaguar.specializations.push_back(std::move(car));
    store::StoredSpecialization cat;
    cat.query = "jaguar cat";
    cat.probability = 0.4;
    jaguar.specializations.push_back(std::move(cat));
  }
  entries.push_back(std::move(jaguar));

  store::StoredEntry apple;
  apple.query = "apple";
  {
    store::StoredSpecialization iphone;
    iphone.query = "apple iphone";
    iphone.probability = 0.5;
    iphone.surrogates.push_back(
        text::TermVector::FromEntries({{7, 0.25}, {9, 1.0}}));
    apple.specializations.push_back(std::move(iphone));
    store::StoredSpecialization fruit;
    fruit.query = "apple fruit";
    fruit.probability = 0.3;
    fruit.surrogates.push_back(text::TermVector::FromEntries({{3, 0.125}}));
    apple.specializations.push_back(std::move(fruit));
    store::StoredSpecialization records;
    records.query = "apple records";
    records.probability = 0.2;
    apple.specializations.push_back(std::move(records));
  }
  entries.push_back(std::move(apple));

  return entries;  // Save() orders by entry query: apple, then jaguar
}

/// The golden compiled plan carried only by the v3 fixture's "jaguar"
/// entry (n = 3 candidates, m = 2 specializations). Probabilities must
/// match the entry or Put drops it; weighted is the honest
/// Σ_j P(q′_j|q)·Ũ computed in the same order as the test's oracle.
store::QueryPlan GoldenJaguarPlan() {
  store::QueryPlan plan;
  plan.num_candidates_requested = 200;
  plan.threshold_c = 0.25;
  plan.docs = {5, 1, 9};
  plan.relevance = {1.0, 0.75, 0.5};
  plan.probability = {0.6, 0.4};
  plan.spec_order = {0, 1};
  plan.utilities = {0.5, 0.0, 0.0, 0.25, 0.125, 0.125};
  for (size_t i = 0; i < 3; ++i) {
    double weighted = 0.0;
    for (size_t j = 0; j < 2; ++j) {
      weighted += plan.probability[j] * plan.utilities[i * 2 + j];
    }
    plan.weighted.push_back(weighted);
  }
  return plan;
}

/// Serializes one entry in the v1/v2 shared layout (no plan byte).
void WriteEntryBody(const store::StoredEntry& entry, BodyWriter* w) {
  w->Str(entry.query);
  w->U32(static_cast<uint32_t>(entry.specializations.size()));
  for (const store::StoredSpecialization& sp : entry.specializations) {
    w->Str(sp.query);
    w->F64(sp.probability);
    w->U32(static_cast<uint32_t>(sp.surrogates.size()));
    for (const text::TermVector& v : sp.surrogates) {
      w->U32(static_cast<uint32_t>(v.entries().size()));
      for (const auto& [term, weight] : v.entries()) {
        w->U32(term);
        w->F64(weight);
      }
    }
  }
}

bool WriteFixture(const std::string& path, const std::string& body,
                  uint64_t checksum_basis) {
  uint64_t checksum =
      util::Fnv1a64(body.data(), body.size(), checksum_basis);
  std::ofstream out(path, std::ios::binary);
  out.write("OSDS", 4);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(),
              body.size() + 4 + sizeof(checksum));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out_dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  std::vector<store::StoredEntry> entries = GoldenEntries();

  // v1: magic | u32 1 | u64 count | entries | legacy-basis checksum.
  {
    BodyWriter w;
    w.U32(1);
    w.U64(entries.size());
    for (const auto& entry : entries) WriteEntryBody(entry, &w);
    if (!WriteFixture(dir + "/store_v1.bin", w.body, kV1ChecksumBasis)) {
      return 1;
    }
  }

  // v2: magic | u32 2 | u64 store_version | u64 count | entries |
  // standard-basis checksum.
  {
    BodyWriter w;
    w.U32(2);
    w.U64(13);  // store_version — the backcompat test asserts it
    w.U64(entries.size());
    for (const auto& entry : entries) WriteEntryBody(entry, &w);
    if (!WriteFixture(dir + "/store_v2.bin", w.body,
                      util::kFnv1aOffsetBasis)) {
      return 1;
    }
  }

  // v3 and v4 carry identical content (golden plan included); v3 goes
  // through the frozen legacy writer, v4 through the current Save — so
  // the v4 fixture doubles as a freeze of Save()'s exact output (the
  // backcompat test byte-compares a re-Save against it).
  {
    store::DiversificationStore store;
    for (auto& entry : entries) {
      if (entry.query == "jaguar") entry.plan = GoldenJaguarPlan();
      util::Status s = store.Put(std::move(entry));
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (store.Find("jaguar")->plan.empty()) {
      std::fprintf(stderr,
                   "error: golden plan was dropped by Put — it no longer "
                   "matches the entry\n");
      return 1;
    }
    store.set_version(13);
    util::Status s = store.SaveLegacyV3(dir + "/store_v3.bin");
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s/store_v3.bin (via SaveLegacyV3)\n", dir.c_str());
    s = store.Save(dir + "/store_v4.bin");
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s/store_v4.bin (via DiversificationStore::Save)\n",
                dir.c_str());
  }
  return 0;
}
