// optselect — command-line front end for the library.
//
// Subcommands (run without arguments for usage):
//
//   generate <dir> [--topics N] [--seed S]
//       Builds the synthetic testbed and writes its artifacts:
//       <dir>/log.tsv (query log), <dir>/topics.tsv, <dir>/qrels.txt,
//       and <dir>/store.bin (the serving-side specialization store).
//
//   mine <log.tsv> [--min-freq F]
//       Rebuilds the mining stack from a query log file and prints every
//       query Algorithm 1 flags as ambiguous, with its specializations.
//
//   run <dir> <out.run> [--algo A] [--c F] [--lambda F] [--k N]
//       Regenerates the testbed of `generate` (same seed), diversifies
//       every topic with algorithm A, writes a TREC run file.
//
//   evaluate <dir> <run...>
//       Scores one or more run files against <dir>/topics.tsv and
//       <dir>/qrels.txt (α-NDCG and IA-P at 5/10/20).

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/footprint.h"
#include "eval/diversity_evaluator.h"
#include "eval/trec_io.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "store/diversification_store.h"
#include "store/store_builder.h"
#include "util/table_printer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  optselect generate <dir> [--topics N] [--seed S]\n"
      "  optselect mine <log.tsv> [--min-freq F]\n"
      "  optselect run <dir> <out.run> [--algo A] [--c F] [--lambda F]"
      " [--k N]\n"
      "  optselect evaluate <dir> <run...>\n");
  return 2;
}

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> positional;

  static Flags Parse(int argc, char** argv, int start) {
    Flags f;
    for (int i = start; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
        f.values[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        f.positional.push_back(argv[i]);
      }
    }
    return f;
  }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

pipeline::TestbedConfig ConfigFor(const Flags& flags) {
  pipeline::TestbedConfig config = pipeline::TestbedConfig::TrecShaped();
  config.universe.num_topics =
      static_cast<size_t>(std::atoi(flags.Get("topics", "20").c_str()));
  uint64_t seed =
      static_cast<uint64_t>(std::atoll(flags.Get("seed", "17").c_str()));
  config.universe.seed = seed;
  config.corpus.seed = seed + 1;
  config.log.seed = seed + 2;
  return config;
}

int CmdGenerate(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  const std::string dir = flags.positional[0];
  std::printf("building testbed...\n");
  pipeline::Testbed testbed(ConfigFor(flags));

  auto check = [](const util::Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(testbed.log_result().log.SaveTsv(dir + "/log.tsv"));
  check(eval::SaveTopics(testbed.corpus().topics, dir + "/topics.tsv"));
  check(eval::SaveQrels(testbed.corpus().qrels, testbed.corpus().topics,
                        dir + "/qrels.txt"));

  store::DiversificationStore built;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  size_t stored = store::BuildStore(
      testbed.detector(), testbed.searcher(), testbed.snippets(),
      testbed.analyzer(), testbed.corpus().store, roots, {}, &built);
  check(built.Save(dir + "/store.bin"));

  std::printf(
      "wrote %s/log.tsv (%zu records), topics.tsv (%zu topics), "
      "qrels.txt (%zu judgments), store.bin (%zu entries, %s payload)\n",
      dir.c_str(), testbed.log_result().log.size(),
      testbed.corpus().topics.size(), testbed.corpus().qrels.size(), stored,
      core::FormatBytes(built.SurrogatePayloadBytes()).c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto log = querylog::QueryLog::LoadTsv(flags.positional[0]);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }
  uint64_t min_freq = static_cast<uint64_t>(
      std::atoll(flags.Get("min-freq", "20").c_str()));

  querylog::QueryFlowGraph graph =
      querylog::QueryFlowGraph::Build(log.value(), {});
  std::vector<querylog::Session> sessions =
      querylog::SessionSegmenter().Segment(log.value(), &graph);
  recommend::ShortcutsRecommender recommender;
  recommender.Train(log.value(), sessions);
  recommend::AmbiguityDetector detector(&recommender);

  std::printf("log: %zu records, %zu sessions, %zu distinct queries\n",
              log.value().size(), sessions.size(),
              recommender.popularity().distinct());
  size_t ambiguous = 0;
  for (const auto& [query, freq] : recommender.popularity().counts()) {
    if (freq < min_freq) continue;
    recommend::SpecializationSet set = detector.Detect(query);
    if (!set.ambiguous()) continue;
    ++ambiguous;
    std::printf("%-20s f=%-6llu", query.c_str(),
                static_cast<unsigned long long>(freq));
    for (const auto& sp : set.items) {
      std::printf(" %s(%.2f)", sp.query.c_str(), sp.probability);
    }
    std::printf("\n");
  }
  std::printf("%zu ambiguous queries (f >= %llu)\n", ambiguous,
              static_cast<unsigned long long>(min_freq));
  return 0;
}

int CmdRun(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  auto algo_result = core::MakeDiversifier(flags.Get("algo", "optselect"));
  if (!algo_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 algo_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<core::Diversifier> algo = std::move(algo_result).value();

  std::printf("rebuilding testbed...\n");
  pipeline::Testbed testbed(ConfigFor(flags));
  pipeline::PipelineParams params;
  params.num_candidates = 1000;
  params.threshold_c = std::atof(flags.Get("c", "0.3").c_str());
  params.diversify.lambda = std::atof(flags.Get("lambda", "0.15").c_str());
  params.diversify.k =
      static_cast<size_t>(std::atoi(flags.Get("k", "1000").c_str()));
  pipeline::DiversificationPipeline pipe(&testbed, params);

  eval::Run run;
  run.name = algo->name() + "-c" + flags.Get("c", "0.3");
  for (const corpus::TrecTopic& topic : testbed.corpus().topics.topics()) {
    run.rankings[topic.id] = pipe.Run(topic.query, *algo).ranking;
  }
  util::Status s = eval::SaveRun(run, flags.positional[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu topics)\n", flags.positional[1].c_str(),
              run.rankings.size());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  const std::string dir = flags.positional[0];
  auto topics = eval::LoadTopics(dir + "/topics.tsv");
  if (!topics.ok()) {
    std::fprintf(stderr, "error: %s\n", topics.status().ToString().c_str());
    return 1;
  }
  auto qrels = eval::LoadQrels(dir + "/qrels.txt");
  if (!qrels.ok()) {
    std::fprintf(stderr, "error: %s\n", qrels.status().ToString().c_str());
    return 1;
  }

  eval::DiversityEvaluator::Options opt;
  opt.cutoffs = {5, 10, 20};
  eval::DiversityEvaluator evaluator(&topics.value(), &qrels.value(), opt);
  util::TablePrinter tp;
  tp.SetHeader({"run", "aN@5", "aN@10", "aN@20", "IA@5", "IA@10", "IA@20"});
  for (size_t i = 1; i < flags.positional.size(); ++i) {
    auto run = eval::LoadRun(flags.positional[i]);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    eval::MetricRow row = evaluator.Evaluate(run.value());
    tp.AddRow({row.run_name, util::TablePrinter::Num(row.alpha_ndcg[5], 3),
               util::TablePrinter::Num(row.alpha_ndcg[10], 3),
               util::TablePrinter::Num(row.alpha_ndcg[20], 3),
               util::TablePrinter::Num(row.ia_precision[5], 3),
               util::TablePrinter::Num(row.ia_precision[10], 3),
               util::TablePrinter::Num(row.ia_precision[20], 3)});
  }
  std::printf("%s", tp.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Flags flags = Flags::Parse(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "mine") return CmdMine(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  return Usage();
}
