// optselect — command-line front end for the library.
//
// Subcommands (run without arguments for usage):
//
//   generate <dir> [--topics N] [--seed S]
//       Builds the synthetic testbed and writes its artifacts:
//       <dir>/log.tsv (query log), <dir>/topics.tsv, <dir>/qrels.txt,
//       and <dir>/store.bin (the serving-side specialization store).
//
//   mine <log.tsv> [--min-freq F]
//       Rebuilds the mining stack from a query log file and prints every
//       query Algorithm 1 flags as ambiguous, with its specializations.
//
//   run <dir> <out.run> [--algo A] [--c F] [--lambda F] [--k N]
//       Regenerates the testbed of `generate` (same seed), diversifies
//       every topic with algorithm A, writes a TREC run file.
//
//   evaluate <dir> <run...>
//       Scores one or more run files against <dir>/topics.tsv and
//       <dir>/qrels.txt (α-NDCG and IA-P at 5/10/20).
//
//   serve <dir> [--workers N] [--batch B] [--cache 0|1] ...
//       Regenerates the testbed retrieval stack (same seed), loads
//       <dir>/store.bin, and starts a ServingNode REPL: one query per
//       stdin line, ranking + latency per answer; ":stats" prints the
//       node's counters, ":refresh" forces a store refresh tick (when
//       refresh is enabled), EOF exits.
//
//   loadtest <dir> [--requests N] [--skew Z] [--workers N] ...
//       Same node, but replays a Zipf-distributed query mix sampled
//       from the testbed log's popularity order and prints the
//       ServingStats summary (QPS, latency quantiles, cache hit rate).
//
// Both serving subcommands accept --refresh-interval S / --log-tail F
// to run the live store lifecycle (tail the query log, re-mine dirty
// queries, hot-swap versioned snapshots mid-traffic).
//
// `optselect --help` (or any unknown flag/subcommand) prints the full
// usage; bad invocations exit with status 2.

#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/sharded_cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/factory.h"
#include "core/footprint.h"
#include "eval/diversity_evaluator.h"
#include "eval/trec_io.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "querylog/popularity.h"
#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serving/cache_key.h"
#include "serving/frontend.h"
#include "serving/replay.h"
#include "serving/serving_node.h"
#include "serving/store_refresher.h"
#include "tools/options.h"
#include "util/hash.h"
#include "store/diversification_store.h"
#include "store/store_builder.h"
#include "store/store_snapshot.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace optselect;  // NOLINT(build/namespaces)

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "optselect — OptSelect diversification testbed & serving CLI\n"
      "\n"
      "usage: optselect <subcommand> [args] [flags]\n"
      "\n"
      "subcommands:\n"
      "  generate <dir>            build the synthetic testbed artifacts:\n"
      "                            log.tsv, topics.tsv, qrels.txt, store.bin\n"
      "                            (store v3: entries carry compiled query\n"
      "                            plans for the serving fast path)\n"
      "      --topics N            planted ambiguous topics (default 20)\n"
      "      --seed S              testbed seed (default 17)\n"
      "      --candidates N        |R_q| the plans are compiled at (default\n"
      "                            200 — must match the serving flag)\n"
      "      --c F                 utility threshold the plans are compiled\n"
      "                            at (default 0.3 — must match serving)\n"
      "      --plans 0|1           compile plans (default 1; 0 writes a\n"
      "                            v2-style store that serves via\n"
      "                            per-request computation)\n"
      "\n"
      "  mine <log.tsv>            run Algorithm 1 over a query log and\n"
      "                            print every detected ambiguous query\n"
      "      --min-freq F          popularity floor f(q) (default 20)\n"
      "\n"
      "  run <dir> <out.run>       diversify every topic, write a TREC run\n"
      "      --algo A              optselect|xquad|iaselect|mmr\n"
      "      --c F                 utility threshold c (default 0.3)\n"
      "      --lambda F            trade-off lambda (default 0.15)\n"
      "      --k N                 ranking depth (default 1000)\n"
      "      --topics N  --seed S  must match `generate`\n"
      "\n"
      "  evaluate <dir> <run...>   score run files (alpha-NDCG, IA-P)\n"
      "\n"
      "  serve <dir>               serving node over store.bin: an\n"
      "                            interactive REPL by default, or — with\n"
      "                            --listen PORT — a wire-protocol TCP\n"
      "                            server (one shard process of a fleet\n"
      "                            with --shard-index/--num-shards)\n"
      "  loadtest <dir>            replay a Zipf query mix, print stats;\n"
      "                            with --connect host:port[,...] the\n"
      "                            replay drives remote shard servers over\n"
      "                            the wire protocol (pipelined), and\n"
      "                            --verify-local 1 asserts remote answers\n"
      "                            are bit-identical to in-process serving\n"
      "  stats <dir>               deterministic sequential replay, then\n"
      "                            the full metrics dump (per-stage\n"
      "                            latency breakdown, counters, traces)\n"
      "  chaos                     deterministic fault-injection scenario\n"
      "                            on the in-process cluster (breakers,\n"
      "                            hedges, degraded answers); with\n"
      "                            --net <dir> it goes process-level:\n"
      "                            spawn shard server processes, SIGKILL\n"
      "                            one mid-replay, assert breaker opens,\n"
      "                            degraded answers match the passthrough\n"
      "                            contract, and recovery after respawn\n"
      "                            is bit-identical\n"
      "\n"
      "  The serving-family subcommands (serve, loadtest, stats, chaos)\n"
      "  share typed flag sets — run `optselect <subcommand> --help` for\n"
      "  the full generated list (serving knobs, cluster shape, store\n"
      "  refresh, network edge). Bad flags exit with status 2.\n"
      "\n"
      "  help | --help | -h        this text\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

struct Flags {
  std::map<std::string, std::string> values;
  std::vector<std::string> positional;
  /// First parse problem ("--flag needs a value"), empty when clean.
  std::string parse_error;

  static Flags Parse(int argc, char** argv, int start) {
    Flags f;
    for (int i = start; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        if (i + 1 >= argc) {
          if (f.parse_error.empty()) {
            f.parse_error = std::string(argv[i]) + " needs a value";
          }
          continue;
        }
        f.values[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        f.positional.push_back(argv[i]);
      }
    }
    return f;
  }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }

  /// Returns false (and prints the offender) when a flag is outside the
  /// subcommand's allowed set or failed to parse.
  bool Validate(const char* subcommand,
                const std::vector<std::string>& allowed) const {
    if (!parse_error.empty()) {
      std::fprintf(stderr, "error: %s\n\n", parse_error.c_str());
      return false;
    }
    for (const auto& [key, value] : values) {
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        std::fprintf(stderr, "error: unknown flag --%s for `%s`\n\n",
                     key.c_str(), subcommand);
        return false;
      }
    }
    return true;
  }
};

// ------------------------------------------------ serving-family options
//
// Each serving-family subcommand declares its typed flag surface once
// through tools/options.h; help text, validation, and defaults all
// derive from these declarations (`optselect serve --help` etc.).

tools::OptionSet ServeOptions() {
  tools::OptionSet opts("serve", "<dir>",
                        "Serving node over <dir>/store.bin: interactive "
                        "REPL, or a wire-protocol TCP server with "
                        "--listen.");
  tools::AddServingOptions(&opts);
  tools::AddMapOptions(&opts);
  tools::AddClusterOptions(&opts);
  tools::AddRefreshOptions(&opts);
  tools::AddListenOptions(&opts);
  tools::AddTestbedOptions(&opts);
  return opts;
}

tools::OptionSet LoadtestOptions() {
  tools::OptionSet opts("loadtest", "<dir>",
                        "Replay a Zipf query mix (in-process, or against "
                        "remote shard servers with --connect) and print "
                        "serving stats.");
  opts.Group("replay");
  opts.AddInt("requests", 5000, "replay size");
  opts.AddDouble("skew", 1.0, "Zipf skew");
  opts.AddString("metrics-out", "",
                 "write the Prometheus text exposition here during and "
                 "after the replay");
  tools::AddServingOptions(&opts);
  tools::AddMapOptions(&opts);
  tools::AddClusterOptions(&opts);
  tools::AddRefreshOptions(&opts);
  tools::AddConnectOptions(&opts);
  tools::AddTestbedOptions(&opts);
  return opts;
}

tools::OptionSet StatsOptions() {
  tools::OptionSet opts("stats", "<dir>",
                        "Deterministic sequential replay, then the full "
                        "metrics dump (stage breakdown, counters, "
                        "traces).");
  opts.Group("replay");
  opts.AddInt("requests", 2000, "replay size");
  opts.AddDouble("skew", 1.0, "Zipf skew");
  opts.AddString("format", "table", "output format: table|prom|json");
  tools::AddServingOptions(&opts);
  tools::AddTestbedOptions(&opts);
  return opts;
}

tools::OptionSet ChaosOptions() {
  tools::OptionSet opts(
      "chaos", "",
      "Deterministic fault-injection scenario over the fault-tolerant "
      "cluster path (in-process), or — with --net <dir> — over spawned "
      "shard server processes (SIGKILL + respawn).");
  opts.Group("scenario");
  opts.AddInt("requests", 4000, "replay size (min 64; --net default 400)");
  opts.AddDouble("skew", 1.0, "Zipf skew");
  opts.AddInt("shards", 3, "cluster size (min 2; --net default 2)");
  opts.AddDouble("hedge-ms", 2, "hedge delay (in-process mode)");
  opts.AddDouble("slow-ms", 20, "injected slow-read delay (in-process)");
  opts.AddString("net", "",
                 "process-level mode: spawn shard servers over this "
                 "generated <dir> and kill one mid-replay");
  tools::AddServingOptions(&opts);
  tools::AddClusterOptions(&opts);
  tools::AddTestbedOptions(&opts);
  return opts;
}

pipeline::TestbedConfig TestbedConfigFrom(size_t topics, uint64_t seed) {
  pipeline::TestbedConfig config = pipeline::TestbedConfig::TrecShaped();
  config.universe.num_topics = topics;
  config.universe.seed = seed;
  config.corpus.seed = seed + 1;
  config.log.seed = seed + 2;
  return config;
}

pipeline::TestbedConfig ConfigFor(const tools::OptionSet& opts) {
  return TestbedConfigFrom(opts.GetSize("topics"),
                           static_cast<uint64_t>(opts.GetInt("seed")));
}

pipeline::TestbedConfig ConfigFor(const Flags& flags) {
  return TestbedConfigFrom(
      static_cast<size_t>(std::atoi(flags.Get("topics", "20").c_str())),
      static_cast<uint64_t>(std::atoll(flags.Get("seed", "17").c_str())));
}

int CmdGenerate(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  const std::string dir = flags.positional[0];
  std::printf("building testbed...\n");
  pipeline::Testbed testbed(ConfigFor(flags));

  auto check = [](const util::Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(testbed.log_result().log.SaveTsv(dir + "/log.tsv"));
  check(eval::SaveTopics(testbed.corpus().topics, dir + "/topics.tsv"));
  check(eval::SaveQrels(testbed.corpus().qrels, testbed.corpus().topics,
                        dir + "/qrels.txt"));

  store::DiversificationStore built;
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  // Plans must be compiled at the exact (candidates, c) pair the node
  // will serve with; defaults mirror the `serve`/`loadtest` defaults.
  store::StoreBuilderOptions options;
  options.compile_plans = flags.Get("plans", "1") != "0";
  options.plan.num_candidates =
      static_cast<size_t>(std::atoi(flags.Get("candidates", "200").c_str()));
  options.plan.threshold_c = std::atof(flags.Get("c", "0.3").c_str());
  size_t stored = store::BuildStore(
      testbed.detector(), testbed.searcher(), testbed.snippets(),
      testbed.analyzer(), testbed.corpus().store, roots, options, &built);
  check(built.Save(dir + "/store.bin"));

  size_t plans = 0;
  for (const auto& [key, entry] : built.entries()) {
    if (!entry.plan.empty()) ++plans;
  }
  std::printf(
      "wrote %s/log.tsv (%zu records), topics.tsv (%zu topics), "
      "qrels.txt (%zu judgments), store.bin (%zu entries, %zu compiled "
      "plans, %s payload)\n",
      dir.c_str(), testbed.log_result().log.size(),
      testbed.corpus().topics.size(), testbed.corpus().qrels.size(), stored,
      plans, core::FormatBytes(built.SurrogatePayloadBytes()).c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  if (flags.positional.empty()) return Usage();
  auto log = querylog::QueryLog::LoadTsv(flags.positional[0]);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }
  uint64_t min_freq = static_cast<uint64_t>(
      std::atoll(flags.Get("min-freq", "20").c_str()));

  querylog::QueryFlowGraph graph =
      querylog::QueryFlowGraph::Build(log.value(), {});
  std::vector<querylog::Session> sessions =
      querylog::SessionSegmenter().Segment(log.value(), &graph);
  recommend::ShortcutsRecommender recommender;
  recommender.Train(log.value(), sessions);
  recommend::AmbiguityDetector detector(&recommender);

  std::printf("log: %zu records, %zu sessions, %zu distinct queries\n",
              log.value().size(), sessions.size(),
              recommender.popularity().distinct());
  size_t ambiguous = 0;
  for (const auto& [query, freq] : recommender.popularity().counts()) {
    if (freq < min_freq) continue;
    recommend::SpecializationSet set = detector.Detect(query);
    if (!set.ambiguous()) continue;
    ++ambiguous;
    std::printf("%-20s f=%-6llu", query.c_str(),
                static_cast<unsigned long long>(freq));
    for (const auto& sp : set.items) {
      std::printf(" %s(%.2f)", sp.query.c_str(), sp.probability);
    }
    std::printf("\n");
  }
  std::printf("%zu ambiguous queries (f >= %llu)\n", ambiguous,
              static_cast<unsigned long long>(min_freq));
  return 0;
}

int CmdRun(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  auto algo_result = core::MakeDiversifier(flags.Get("algo", "optselect"));
  if (!algo_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 algo_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<core::Diversifier> algo = std::move(algo_result).value();

  std::printf("rebuilding testbed...\n");
  pipeline::Testbed testbed(ConfigFor(flags));
  pipeline::PipelineParams params;
  params.num_candidates = 1000;
  params.threshold_c = std::atof(flags.Get("c", "0.3").c_str());
  params.diversify.lambda = std::atof(flags.Get("lambda", "0.15").c_str());
  params.diversify.k =
      static_cast<size_t>(std::atoi(flags.Get("k", "1000").c_str()));
  pipeline::DiversificationPipeline pipe(&testbed, params);

  eval::Run run;
  run.name = algo->name() + "-c" + flags.Get("c", "0.3");
  for (const corpus::TrecTopic& topic : testbed.corpus().topics.topics()) {
    run.rankings[topic.id] = pipe.Run(topic.query, *algo).ranking;
  }
  util::Status s = eval::SaveRun(run, flags.positional[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu topics)\n", flags.positional[1].c_str(),
              run.rankings.size());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  if (flags.positional.size() < 2) return Usage();
  const std::string dir = flags.positional[0];
  auto topics = eval::LoadTopics(dir + "/topics.tsv");
  if (!topics.ok()) {
    std::fprintf(stderr, "error: %s\n", topics.status().ToString().c_str());
    return 1;
  }
  auto qrels = eval::LoadQrels(dir + "/qrels.txt");
  if (!qrels.ok()) {
    std::fprintf(stderr, "error: %s\n", qrels.status().ToString().c_str());
    return 1;
  }

  eval::DiversityEvaluator::Options opt;
  opt.cutoffs = {5, 10, 20};
  eval::DiversityEvaluator evaluator(&topics.value(), &qrels.value(), opt);
  util::TablePrinter tp;
  tp.SetHeader({"run", "aN@5", "aN@10", "aN@20", "IA@5", "IA@10", "IA@20"});
  for (size_t i = 1; i < flags.positional.size(); ++i) {
    auto run = eval::LoadRun(flags.positional[i]);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    eval::MetricRow row = evaluator.Evaluate(run.value());
    tp.AddRow({row.run_name, util::TablePrinter::Num(row.alpha_ndcg[5], 3),
               util::TablePrinter::Num(row.alpha_ndcg[10], 3),
               util::TablePrinter::Num(row.alpha_ndcg[20], 3),
               util::TablePrinter::Num(row.ia_precision[5], 3),
               util::TablePrinter::Num(row.ia_precision[10], 3),
               util::TablePrinter::Num(row.ia_precision[20], 3)});
  }
  std::printf("%s", tp.ToString().c_str());
  return 0;
}

/// Parses a non-negative integer flag; negative values (which would
/// wrap when cast to size_t) fall back to `fallback`.
serving::ServingConfig ServingConfigFor(const tools::OptionSet& opts) {
  serving::ServingConfig config;
  config.num_workers = opts.GetSize("workers");
  config.max_batch = opts.GetSize("batch");
  config.enable_cache = opts.GetBool("cache");
  config.cache.capacity = opts.GetSize("cache-capacity");
  config.params.num_candidates = opts.GetSize("candidates");
  config.params.threshold_c = opts.GetDouble("c");
  config.params.diversify.lambda = opts.GetDouble("lambda");
  config.params.diversify.k = opts.GetSize("k");
  config.streaming_cold_path = opts.GetBool("streaming");
  return config;
}

void PrintServingStats(const serving::ServingStats& s) {
  util::TablePrinter tp;
  tp.SetHeader({"metric", "value"});
  tp.AddRow({"uptime s", util::TablePrinter::Num(s.uptime_seconds, 1)});
  tp.AddRow({"completed", std::to_string(s.completed)});
  tp.AddRow({"rejected", std::to_string(s.rejected)});
  tp.AddRow({"QPS", util::TablePrinter::Num(s.qps, 0)});
  tp.AddRow({"p50 ms", util::TablePrinter::Num(s.p50_ms, 2)});
  tp.AddRow({"p95 ms", util::TablePrinter::Num(s.p95_ms, 2)});
  tp.AddRow({"p99 ms", util::TablePrinter::Num(s.p99_ms, 2)});
  tp.AddRow({"diversified", std::to_string(s.diversified)});
  tp.AddRow({"plan served", std::to_string(s.plan_served)});
  tp.AddRow({"streaming served", std::to_string(s.streaming_served)});
  tp.AddRow({"passthrough", std::to_string(s.passthrough)});
  tp.AddRow({"cache hit rate", util::TablePrinter::Num(s.cache_hit_rate, 3)});
  tp.AddRow({"cache entries", std::to_string(s.cache_entries)});
  tp.AddRow({"cache evictions", std::to_string(s.cache_evictions)});
  tp.AddRow({"mean batch", util::TablePrinter::Num(s.mean_batch, 2)});
  tp.AddRow({"batch dedup hits", std::to_string(s.batch_dedup_hits)});
  tp.AddRow({"store version", std::to_string(s.store_version)});
  tp.AddRow({"store reloads", std::to_string(s.reloads)});
  tp.AddRow({"cache invalidations", std::to_string(s.cache_invalidations)});
  if (s.faulted > 0 || s.reload_failures > 0) {
    tp.AddRow({"injected faults", std::to_string(s.faulted)});
    tp.AddRow({"reload failures", std::to_string(s.reload_failures)});
  }
  std::printf("%s", tp.ToString().c_str());
}

/// Per-stage latency breakdown from the registry's stage histograms,
/// merged across label sets (shards). The reply stage is excluded from
/// the p50 sum because the node's e2e latency is recorded *before* the
/// completion callback runs — both sides of the comparison leave it
/// out. Stage histograms are populated only when tracing is compiled
/// in; the table says so instead of printing zeros silently.
void PrintStageBreakdown(const obs::MetricsRegistry& registry) {
  if (!obs::TracingCompiledIn()) {
    std::printf(
        "per-stage breakdown unavailable: stage timers are compiled out "
        "(rebuild with -DOPTSELECT_TRACING=ON, or a Debug build)\n");
    return;
  }
  serving::LatencyHistogram e2e;
  for (const auto& [labels, hist] :
       registry.HistogramsNamed("optselect_request_latency_seconds")) {
    e2e.MergeFrom(*hist);
  }
  auto stage_hists =
      registry.HistogramsNamed("optselect_stage_latency_seconds");

  util::TablePrinter tp;
  tp.SetHeader({"stage", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"});
  double p50_sum_ms = 0.0;
  static const char* kStages[] = {"queue_wait", "cache_lookup",
                                  "store_read", "select", "reply",
                                  "scan",       "maintain"};
  for (const char* stage : kStages) {
    serving::LatencyHistogram merged;
    for (const auto& [labels, hist] : stage_hists) {
      for (const auto& [key, value] : labels) {
        if (key == "stage" && value == stage) merged.MergeFrom(*hist);
      }
    }
    double p50_ms = merged.PercentileMicros(0.50) / 1000.0;
    // reply is excluded (see above); scan/maintain are sub-spans of
    // select and would double-count it.
    if (std::strcmp(stage, "reply") != 0 &&
        std::strcmp(stage, "scan") != 0 &&
        std::strcmp(stage, "maintain") != 0) {
      p50_sum_ms += p50_ms;
    }
    tp.AddRow({stage, std::to_string(merged.count()),
               util::TablePrinter::Num(p50_ms, 3),
               util::TablePrinter::Num(merged.PercentileMicros(0.95) / 1000.0,
                                       3),
               util::TablePrinter::Num(merged.PercentileMicros(0.99) / 1000.0,
                                       3),
               util::TablePrinter::Num(merged.MeanMicros() / 1000.0, 3)});
  }
  tp.AddRow({"e2e total", std::to_string(e2e.count()),
             util::TablePrinter::Num(e2e.PercentileMicros(0.50) / 1000.0, 3),
             util::TablePrinter::Num(e2e.PercentileMicros(0.95) / 1000.0, 3),
             util::TablePrinter::Num(e2e.PercentileMicros(0.99) / 1000.0, 3),
             util::TablePrinter::Num(e2e.MeanMicros() / 1000.0, 3)});
  std::printf("%s", tp.ToString().c_str());
  std::printf(
      "stage p50 sum (queue+cache+store+select) = %.3f ms, e2e p50 = "
      "%.3f ms\n",
      p50_sum_ms, e2e.PercentileMicros(0.50) / 1000.0);
}

/// The slow-query log plus the tail of the trace ring.
void PrintTraces(const obs::Tracer& tracer) {
  std::vector<obs::Trace> slow = tracer.Slowest();
  std::printf("slow-query log (%zu of %llu committed traces):\n",
              slow.size(),
              static_cast<unsigned long long>(tracer.committed()));
  for (const obs::Trace& trace : slow) {
    std::printf("%s", obs::Tracer::Format(trace).c_str());
  }
  std::vector<obs::Trace> recent = tracer.Recent();
  size_t tail = std::min<size_t>(recent.size(), 4);
  if (tail > 0) {
    std::printf("most recent %zu sampled traces:\n", tail);
    for (size_t i = recent.size() - tail; i < recent.size(); ++i) {
      std::printf("%s", obs::Tracer::Format(recent[i]).c_str());
    }
  }
}

/// Makes the tool's tracer when this build evaluates tracing; null
/// (and a one-line notice for interactive surfaces) otherwise.
/// `fallback_every` applies when --trace-every was not given: serve and
/// stats trace every request, loadtest 1-in-64, chaos 1-in-16.
std::unique_ptr<obs::Tracer> MakeTracer(const tools::OptionSet& opts,
                                        uint64_t fallback_every) {
  if (!obs::TracingCompiledIn()) return nullptr;
  obs::TracerConfig config;
  config.sample_every = opts.IsSet("trace-every")
                            ? static_cast<uint64_t>(opts.GetInt("trace-every"))
                            : fallback_every;
  return std::make_unique<obs::Tracer>(config);
}

/// Builds (and starts) the refresh loop when --refresh-interval > 0.
/// Returns nullptr when refresh is disabled. `shard_index` >= 0 marks a
/// cluster shard's refresher: the mined delta is filtered to the keys
/// the shard holds, and the persist path (if any) gets a per-shard
/// suffix so shards never clobber each other's snapshots.
std::unique_ptr<serving::StoreRefresher> MakeRefresher(
    const tools::OptionSet& opts, const std::string& dir,
    serving::ServingNode* node, const pipeline::Testbed& testbed,
    std::function<bool(const std::string&)> key_filter = nullptr,
    int shard_index = -1) {
  double interval_s = opts.GetDouble("refresh-interval");
  if (interval_s <= 0) return nullptr;
  serving::StoreRefresherConfig rc;
  rc.log_path = opts.IsSet("log-tail") ? opts.GetString("log-tail")
                                       : dir + "/log.tsv";
  rc.interval = std::chrono::milliseconds(
      static_cast<long long>(interval_s * 1000.0));
  rc.persist_path = opts.GetString("store-persist");
  if (!rc.persist_path.empty() && shard_index >= 0) {
    rc.persist_path += ".shard" + std::to_string(shard_index);
  }
  rc.key_filter = std::move(key_filter);
  auto refresher = std::make_unique<serving::StoreRefresher>(
      node, &testbed.searcher(), &testbed.snippets(), &testbed.analyzer(),
      &testbed.corpus().store, testbed.log_result().log, rc);
  refresher->Start();
  if (shard_index <= 0) {
    std::printf(
        "store refresh: tailing %s every %.1fs (offset %llu)%s\n",
        rc.log_path.c_str(), interval_s,
        static_cast<unsigned long long>(refresher->ingestor().offset()),
        shard_index == 0 ? " [one refresher per shard]" : "");
  }
  return refresher;
}

void PrintRefresherStats(const serving::StoreRefresher& refresher) {
  serving::StoreRefresherStats rs = refresher.stats();
  std::printf(
      "refresh: %llu ticks, %llu records ingested, %llu swaps "
      "(%llu upserts, %llu removals), store version %llu, %llu errors\n",
      static_cast<unsigned long long>(rs.ticks),
      static_cast<unsigned long long>(rs.ingested_records),
      static_cast<unsigned long long>(rs.swaps),
      static_cast<unsigned long long>(rs.upserts),
      static_cast<unsigned long long>(rs.removals),
      static_cast<unsigned long long>(rs.store_version),
      static_cast<unsigned long long>(rs.errors));
}

void PrintClusterStats(const cluster::ClusterStats& cs) {
  PrintServingStats(cs.total);
  util::TablePrinter tp;
  tp.SetHeader({"shard", "routed", "completed", "diversified", "plan",
                "hit rate", "p99 ms", "store ver"});
  for (size_t i = 0; i < cs.per_shard.size(); ++i) {
    const serving::ServingStats& s = cs.per_shard[i];
    tp.AddRow({std::to_string(i), std::to_string(cs.router.per_shard[i]),
               std::to_string(s.completed), std::to_string(s.diversified),
               std::to_string(s.plan_served),
               util::TablePrinter::Num(s.cache_hit_rate, 3),
               util::TablePrinter::Num(s.p99_ms, 2),
               std::to_string(s.store_version)});
  }
  std::printf("%s", tp.ToString().c_str());
  std::printf(
      "router: %llu routed (%llu via hot replicas), %llu batches "
      "(%llu batched requests)\n",
      static_cast<unsigned long long>(cs.router.routed),
      static_cast<unsigned long long>(cs.router.replicated_routed),
      static_cast<unsigned long long>(cs.router.batches),
      static_cast<unsigned long long>(cs.router.batch_requests));
  if (cs.router.failover_serves > 0) {
    std::printf(
        "failover: %llu serves, %llu retried, %llu degraded, %llu "
        "dropped, %llu/%llu hedges won/launched, %llu probes, %llu "
        "breaker opens\n",
        static_cast<unsigned long long>(cs.router.failover_serves),
        static_cast<unsigned long long>(cs.router.retried),
        static_cast<unsigned long long>(cs.router.degraded),
        static_cast<unsigned long long>(cs.router.dropped),
        static_cast<unsigned long long>(cs.router.hedges_won),
        static_cast<unsigned long long>(cs.router.hedges_launched),
        static_cast<unsigned long long>(cs.router.probes),
        static_cast<unsigned long long>(cs.router.breaker_opens));
  }
}

/// Builds a cluster (when --shards > 1) plus its per-shard refreshers.
/// A non-null `mapped` makes every shard a zero-copy view over the one
/// shared v4 mapping instead of a SplitStore copy; `store` is the heap
/// fallback and may be null whenever `mapped` is set.
std::unique_ptr<cluster::ShardedCluster> MakeCluster(
    const tools::OptionSet& opts, const std::string& dir,
    const store::DiversificationStore* store,
    std::shared_ptr<const store::MappedStoreFile> mapped,
    const pipeline::Testbed& testbed,
    const serving::ServingConfig& serving_config,
    std::vector<std::unique_ptr<serving::StoreRefresher>>* refreshers) {
  size_t shards = opts.GetSize("shards");
  if (shards <= 1) return nullptr;
  cluster::ClusterConfig cc;
  cc.num_shards = shards;
  cc.replicate_hot = opts.GetSize("replicate-hot");
  cc.node = serving_config;
  auto cl =
      mapped != nullptr
          ? std::make_unique<cluster::ShardedCluster>(
                std::move(mapped), &testbed.searcher(), &testbed.snippets(),
                &testbed.analyzer(), &testbed.corpus().store,
                &testbed.recommender().popularity(), cc)
          : std::make_unique<cluster::ShardedCluster>(
                *store, &testbed, &testbed.recommender().popularity(), cc);
  for (size_t i = 0; i < cl->num_shards(); ++i) {
    // Each shard refreshes independently, applying only the slice of
    // the mined delta it holds (owner or hot replica).
    store::ShardFilter filter = cl->filter(i);
    auto refresher = MakeRefresher(
        opts, dir, cl->shard(i), testbed,
        [filter = std::move(filter)](const std::string& key) {
          return filter.Keeps(key);
        },
        static_cast<int>(i));
    if (refresher != nullptr) refreshers->push_back(std::move(refresher));
  }
  std::printf(
      "cluster: %zu shards (%zu workers each), %zu hot keys replicated\n",
      cl->num_shards(), cl->shard(0)->config().num_workers,
      cl->replicated_keys().size());
  return cl;
}

/// Rebuilds the retrieval stack and loads <dir>/store.bin. Returns
/// nullptr (after printing the error) on failure.
std::unique_ptr<store::DiversificationStore> LoadStoreOrDie(
    const std::string& dir) {
  auto loaded = store::DiversificationStore::Load(dir + "/store.bin");
  if (!loaded.ok()) {
    std::fprintf(stderr,
                 "error: %s (run `optselect generate %s` first)\n",
                 loaded.status().ToString().c_str(), dir.c_str());
    return nullptr;
  }
  return std::make_unique<store::DiversificationStore>(
      std::move(loaded).value());
}

/// v2 → v3 upgrade on load: compiles query plans for every entry that
/// lacks one compatible with this node's serving params (a v3 store
/// generated with matching --candidates/--c compiles nothing here).
/// Returns the number of plans compiled — 0 means the file on disk
/// already matches what this node would serve.
size_t RecompilePlansForServing(store::DiversificationStore* store,
                                const pipeline::Testbed& testbed,
                                const serving::ServingConfig& config) {
  store::PlanCompileOptions plan;
  plan.num_candidates = config.params.num_candidates;
  plan.threshold_c = config.params.threshold_c;
  size_t compiled = store::CompilePlans(
      store, testbed.searcher(), testbed.snippets(), testbed.analyzer(),
      testbed.corpus().store, plan);
  if (compiled > 0) {
    std::printf("compiled %zu query plans (store lacked plans for "
                "candidates=%zu c=%.2f)\n",
                compiled, plan.num_candidates, plan.threshold_c);
  }
  return compiled;
}

/// Map-first store open shared by serve and loadtest. The result is
/// either a v4 mapping served zero-copy (heap == nullptr, so the node
/// never pays the parse/materialize cost at all) or a heap store from
/// the legacy loader (mapped == nullptr) — never both. Falls back to
/// the heap parse with a printed reason when:
///   - the file is not v4 (legacy v1–v3 stream, or missing);
///   - the file is v4 but its compiled plans don't match this node's
///     --candidates/--c (the mapping is immutable; the heap path
///     recompiles them instead).
/// A file that *claims* v4 but fails Map's validation is a hard error
/// (ok == false): corruption must never silently downgrade to a slower
/// path that happens to parse the same bytes differently.
struct OpenedStore {
  std::shared_ptr<const store::MappedStoreFile> mapped;
  std::unique_ptr<store::DiversificationStore> heap;
  bool ok = false;
};

OpenedStore OpenStoreForServing(const tools::OptionSet& opts,
                                const std::string& dir,
                                const serving::ServingConfig& config) {
  OpenedStore out;
  store::MapWarmup warmup = store::MapWarmup::kNone;
  const std::string warmup_flag = opts.GetString("map-warmup");
  if (!store::ParseMapWarmup(warmup_flag, &warmup)) {
    std::fprintf(stderr,
                 "error: --map-warmup expects none|madvise|mlock, got "
                 "\"%s\"\n",
                 warmup_flag.c_str());
    return out;
  }

  const std::string path = dir + "/store.bin";
  std::string fallback_reason;
  if (!store::MappedStoreFile::LooksLikeV4(path)) {
    fallback_reason = "store.bin is not v4 (legacy stream, or missing)";
  } else {
    auto mapped = store::MappedStoreFile::Map(path);
    if (!mapped.ok()) {
      std::fprintf(stderr,
                   "error: %s claims store format v4 but failed to map: "
                   "%s\nrefusing the heap fallback for a corrupt file — "
                   "regenerate the store\n",
                   path.c_str(), mapped.status().ToString().c_str());
      return out;
    }
    size_t missing = mapped.value()->MissingPlanCount(
        config.params.num_candidates, config.params.threshold_c);
    if (missing > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%zu entries lack plans compiled for candidates=%zu "
                    "c=%.2f (regenerate with matching flags to serve "
                    "zero-copy)",
                    missing, config.params.num_candidates,
                    config.params.threshold_c);
      fallback_reason = buf;
    } else {
      out.mapped = std::move(mapped).value();
      const double mib = static_cast<double>(out.mapped->mapped_bytes()) /
                         (1024.0 * 1024.0);
      std::printf("store mapped zero-copy (v4, %zu entries, %.1f MiB)\n",
                  out.mapped->entry_count(), mib);
      if (warmup != store::MapWarmup::kNone) {
        store::MapWarmupOutcome w = out.mapped->Warm(warmup);
        const char* applied =
            w.applied == store::MapWarmup::kMlock ? "mlock"
            : w.applied == store::MapWarmup::kMadvise
                ? "madvise(MADV_WILLNEED)"
                : "none";
        if (w.fell_back) {
          std::printf("map warm-up: %s refused (%s); applied %s\n",
                      warmup_flag.c_str(), w.detail.c_str(), applied);
        } else {
          std::printf("map warm-up: %s over %.1f MiB\n", applied, mib);
        }
      }
      out.ok = true;
      return out;
    }
  }
  std::printf("store mapping off: %s; serving from heap parse\n",
              fallback_reason.c_str());
  out.heap = LoadStoreOrDie(dir);
  out.ok = out.heap != nullptr;
  return out;
}

/// Set by SIGINT/SIGTERM: the network serve loop drains and exits.
volatile std::sig_atomic_t g_shutdown_requested = 0;
void OnShutdownSignal(int) { g_shutdown_requested = 1; }

/// Atomically publishes the bound port (tmp + rename), so a poller
/// (chaos --net, the CI smoke script) never reads a half-written file.
bool WritePortFile(const std::string& path, uint16_t port) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fprintf(f, "%u\n", static_cast<unsigned>(port)) > 0;
  // fclose flushes — ENOSPC surfaces here, not at fprintf; both must
  // succeed or the poller could rename-in an empty port file.
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());  // never leak the tmp next to a stale port
    return false;
  }
  return true;
}

int CmdServe(const tools::OptionSet& opts) {
  if (opts.positional().empty()) {
    opts.PrintHelp(stderr);
    return 2;
  }
  const std::string dir = opts.positional()[0];

  const bool net_mode = opts.GetInt("listen") >= 0;
  // A shard process of a fleet serves only its slice of the store —
  // the same FNV-1a partition ShardedCluster applies in process, so a
  // remote fleet and a local cluster pick identical owners. Over a v4
  // store the slice is a MappedShard *view* of the one shared mapping
  // (every process on the host shares the physical pages); only the
  // legacy heap path still pays for a SplitStore copy.
  long long shard_index = opts.GetInt("shard-index");
  size_t num_shards = opts.GetSize("num-shards");
  const bool sliced = shard_index >= 0 && num_shards > 1;
  if (sliced && static_cast<size_t>(shard_index) >= num_shards) {
    std::fprintf(stderr,
                 "error: --shard-index %lld out of range for "
                 "--num-shards %zu\n",
                 shard_index, num_shards);
    return 2;
  }
  store::ShardFilter filter;
  filter.num_shards = num_shards;
  filter.shard_index = sliced ? static_cast<size_t>(shard_index) : 0;

  serving::ServingConfig serving_config = ServingConfigFor(opts);
  OpenedStore opened = OpenStoreForServing(opts, dir, serving_config);
  if (!opened.ok) return 1;
  std::unique_ptr<store::DiversificationStore>& store = opened.heap;
  std::shared_ptr<const store::MappedStoreFile> mapped = opened.mapped;
  if (sliced && store != nullptr) {
    *store = store::SplitStore(*store, filter);
  }

  std::printf("rebuilding testbed retrieval stack...\n");
  pipeline::Testbed testbed(ConfigFor(opts));
  if (store != nullptr) {
    RecompilePlansForServing(store.get(), testbed, serving_config);
  }

  // The single-node snapshot: the whole mapping, or a zero-copy shard
  // view over it (MakeCluster's make_snapshot lambda builds the same
  // shapes per shard); null on the heap path (the heap node ctor).
  std::shared_ptr<const store::StoreSnapshot> snapshot;
  if (mapped != nullptr) {
    snapshot = sliced ? store::StoreSnapshot::MappedShard(
                            mapped,
                            [filter](std::string_view key) {
                              return filter.Keeps(key);
                            })
                      : store::StoreSnapshot::FromMapped(mapped);
  }
  const size_t stored_entries =
      snapshot != nullptr ? snapshot->entry_count() : store->size();
  if (sliced) {
    std::printf("serving shard %lld/%zu: %zu stored entries%s\n",
                shard_index, num_shards, stored_entries,
                mapped != nullptr
                    ? " (zero-copy view over the shared mapping)"
                    : "");
  }

  // One node, or a sharded cluster behind a router (--shards N; a
  // sliced process is always a single node — its fleet's other shards
  // are other processes). The tracer is declared before both so it
  // outlives their worker threads.
  std::unique_ptr<obs::Tracer> tracer = MakeTracer(opts, 1);
  std::vector<std::unique_ptr<serving::StoreRefresher>> refreshers;
  std::unique_ptr<cluster::ShardedCluster> cl =
      sliced ? nullptr
             : MakeCluster(opts, dir, store.get(), mapped, testbed,
                           serving_config, &refreshers);
  std::unique_ptr<serving::ServingNode> node;
  if (cl == nullptr) {
    node = snapshot != nullptr
               ? std::make_unique<serving::ServingNode>(
                     snapshot, &testbed.searcher(), &testbed.snippets(),
                     &testbed.analyzer(), &testbed.corpus().store,
                     serving_config)
               : std::make_unique<serving::ServingNode>(store.get(), &testbed,
                                                        serving_config);
    // A sliced node refreshes like a cluster shard: only the keys it
    // owns, and any persisted snapshot gets the per-shard suffix so
    // sibling processes never clobber each other.
    auto refresher =
        sliced ? MakeRefresher(
                     opts, dir, node.get(), testbed,
                     [filter](const std::string& key) {
                       return filter.Keeps(key);
                     },
                     static_cast<int>(shard_index))
               : MakeRefresher(opts, dir, node.get(), testbed);
    if (refresher != nullptr) refreshers.push_back(std::move(refresher));
  }
  if (tracer != nullptr) {
    if (cl != nullptr) {
      cl->set_tracer(tracer.get());
    } else {
      node->set_tracer(tracer.get());
    }
  }

  if (net_mode) {
    // Wire-protocol TCP server instead of the REPL. Either tier sits
    // behind the same Frontend interface, so the server cannot tell a
    // single (possibly sliced) node from a whole in-process cluster.
    serving::Frontend* frontend =
        cl != nullptr ? static_cast<serving::Frontend*>(cl.get())
                      : static_cast<serving::Frontend*>(node.get());
    obs::MetricsRegistry net_registry;
    net::NetServerConfig sc;
    sc.port = static_cast<uint16_t>(opts.GetInt("listen"));
    sc.max_connections = opts.GetSize("max-conns");
    sc.max_inflight_per_conn = opts.GetSize("max-inflight");
    sc.registry = &net_registry;
    net::NetServer server(frontend, sc);
    if (!server.Start()) {
      std::fprintf(stderr, "error: %s\n", server.last_error().c_str());
      return 1;
    }
    const std::string port_file = opts.GetString("port-file");
    if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
      std::fprintf(stderr, "error: cannot write --port-file %s\n",
                   port_file.c_str());
      server.Stop();
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u (%zu stored queries; "
                "SIGINT/SIGTERM stops)\n",
                static_cast<unsigned>(server.port()), stored_entries);
    std::fflush(stdout);
    std::signal(SIGINT, OnShutdownSignal);
    std::signal(SIGTERM, OnShutdownSignal);
    while (g_shutdown_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.Stop();
    net::NetServerStats ns = server.stats();
    std::printf(
        "net: %llu conns accepted (%llu rejected), %llu requests, %llu "
        "responses, %llu shed, %llu protocol errors\n",
        static_cast<unsigned long long>(ns.connections_accepted),
        static_cast<unsigned long long>(ns.connections_rejected),
        static_cast<unsigned long long>(ns.requests),
        static_cast<unsigned long long>(ns.responses),
        static_cast<unsigned long long>(ns.shed),
        static_cast<unsigned long long>(ns.protocol_errors));
    if (cl != nullptr) {
      PrintClusterStats(cl->Stats());
    } else {
      PrintServingStats(node->Stats());
    }
    for (const auto& refresher : refreshers) refresher->Stop();
    return 0;
  }
  // Clusters answer through the fault-tolerant path: a wedged or killed
  // shard degrades its keys instead of erroring the REPL.
  auto serve = [&](const std::string& query) {
    return cl != nullptr ? cl->ServeWithFailover(query)
                         : node->Serve(query);
  };
  auto print_stats = [&] {
    if (cl != nullptr) {
      PrintClusterStats(cl->Stats());
      PrintStageBreakdown(cl->metrics());
    } else {
      PrintServingStats(node->Stats());
      PrintStageBreakdown(node->metrics());
    }
    for (const auto& refresher : refreshers) {
      PrintRefresherStats(*refresher);
    }
  };

  // Resolved per-node config (ServingNode rewrites num_workers == 0 to
  // the hardware concurrency).
  const serving::ServingConfig& resolved =
      cl != nullptr ? cl->shard(0)->config() : node->config();
  std::printf(
      "serving %zu stored queries with %zu workers (batch %zu, cache %s)\n"
      "one query per line; \":stats\" prints counters + stage breakdown; "
      "\":traces\" prints sampled traces; \":refresh\" forces a refresh "
      "tick; EOF exits\n",
      stored_entries, resolved.num_workers, resolved.max_batch,
      resolved.enable_cache ? "on" : "off");

  char line[4096];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string query(line);
    while (!query.empty() &&
           (query.back() == '\n' || query.back() == '\r')) {
      query.pop_back();
    }
    if (query.empty()) continue;
    if (query == ":stats") {
      print_stats();
      continue;
    }
    if (query == ":traces") {
      if (tracer == nullptr) {
        std::printf(
            "tracing is compiled out of this build (rebuild with "
            "-DOPTSELECT_TRACING=ON, or a Debug build)\n");
      } else {
        PrintTraces(*tracer);
      }
      continue;
    }
    if (query == ":refresh") {
      if (refreshers.empty()) {
        std::printf("refresh disabled (run with --refresh-interval S)\n");
        continue;
      }
      for (const auto& refresher : refreshers) {
        util::Status s = refresher->TickOnce();
        if (!s.ok()) {
          std::printf("refresh tick failed: %s\n", s.ToString().c_str());
        }
        PrintRefresherStats(*refresher);
      }
      continue;
    }
    util::WallTimer timer;
    serving::ServeResult result = serve(query);
    double ms = timer.ElapsedMillis();
    std::printf("%s | %s%s%s%s | %.2f ms |", query.c_str(),
                result.diversified ? "diversified" : "passthrough",
                result.cache_hit ? " (cached)" : "",
                result.degraded ? " (degraded)" : "",
                result.hedged ? " (hedged)" : "", ms);
    for (DocId doc : result.ranking) {
      std::printf(" %u", static_cast<unsigned>(doc));
    }
    std::printf("\n");
  }
  print_stats();
  return 0;
}

/// `loadtest --connect`: drive remote shard servers over the wire
/// protocol. The mix is partitioned by the shared owner hash — the
/// partition `serve --shard-index` sliced the store with — and each
/// endpoint gets one pipelined connection. With --verify-local the
/// same mix is then served in process over the full store and every
/// answer must be bit-identical (FNV-1a ranking hashes).
int CmdLoadtestRemote(const tools::OptionSet& opts, const std::string& dir,
                      const pipeline::Testbed& testbed,
                      const std::vector<std::string>& mix) {
  std::vector<net::Endpoint> endpoints;
  if (!net::ParseEndpointList(opts.GetString("connect"), &endpoints) ||
      endpoints.empty()) {
    std::fprintf(stderr,
                 "error: --connect expects host:port[,host:port...]\n");
    return 2;
  }
  size_t window = opts.GetSize("pipeline");
  if (window == 0) window = 1;

  std::vector<std::vector<std::string>> shard_queries(endpoints.size());
  std::vector<std::vector<size_t>> shard_indices(endpoints.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    size_t owner = endpoints.size() == 1
                       ? 0
                       : store::ShardFilter::OwnerShard(
                             serving::NormalizeQuery(mix[i]),
                             endpoints.size());
    shard_queries[owner].push_back(mix[i]);
    shard_indices[owner].push_back(i);
  }

  std::printf("replaying %zu requests over %zu connection(s), window "
              "%zu...\n",
              mix.size(), endpoints.size(), window);
  std::vector<std::vector<serving::Response>> shard_responses(
      endpoints.size());
  std::vector<std::string> connect_errors(endpoints.size());
  util::WallTimer timer;
  std::vector<std::thread> threads;
  for (size_t s = 0; s < endpoints.size(); ++s) {
    threads.emplace_back([&, s] {
      net::RemoteClient client;
      if (!client.Connect(endpoints[s].host, endpoints[s].port)) {
        connect_errors[s] = client.last_error();
        return;
      }
      shard_responses[s] = client.SubmitPipelined(shard_queries[s], window);
    });
  }
  for (auto& t : threads) t.join();
  double wall_ms = timer.ElapsedMillis();

  for (size_t s = 0; s < endpoints.size(); ++s) {
    if (!connect_errors[s].empty()) {
      std::fprintf(stderr, "error: %s:%u: %s\n", endpoints[s].host.c_str(),
                   static_cast<unsigned>(endpoints[s].port),
                   connect_errors[s].c_str());
      return 1;
    }
  }

  // Stitch the per-shard response streams back into mix order.
  std::vector<serving::Response> responses(mix.size());
  for (size_t s = 0; s < endpoints.size(); ++s) {
    for (size_t j = 0; j < shard_indices[s].size(); ++j) {
      responses[shard_indices[s][j]] = std::move(shard_responses[s][j]);
    }
  }
  size_t ok = 0;
  size_t failed = 0;
  for (const serving::Response& response : responses) {
    if (response.ok) {
      ++ok;
    } else {
      ++failed;
    }
  }
  std::printf(
      "replayed %zu/%zu requests in %.1f ms (%.0f QPS); %zu failed/shed\n",
      ok, mix.size(), wall_ms, wall_ms > 0 ? ok * 1000.0 / wall_ms : 0.0,
      failed);

  if (!opts.GetBool("verify-local")) return failed == 0 ? 0 : 1;

  std::unique_ptr<store::DiversificationStore> store = LoadStoreOrDie(dir);
  if (store == nullptr) return 1;
  std::printf("verify-local: serving the same mix in process...\n");
  serving::ServingConfig config = ServingConfigFor(opts);
  RecompilePlansForServing(store.get(), testbed, config);
  serving::ServingNode local(store.get(), &testbed, config);
  size_t mismatches = 0;
  for (size_t i = 0; i < mix.size(); ++i) {
    if (!responses[i].ok) {
      ++mismatches;
      continue;
    }
    serving::Response reference = local.Submit(serving::Request(mix[i]));
    if (cluster::RankingHash(reference.ranking) !=
        cluster::RankingHash(responses[i].ranking)) {
      ++mismatches;
      std::fprintf(stderr, "MISMATCH: \"%s\" remote != local\n",
                   mix[i].c_str());
    }
  }
  local.Shutdown();
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %zu of %zu remote answers diverge from "
                 "in-process serving\n",
                 mismatches, mix.size());
    return 1;
  }
  std::printf("OK: all %zu remote answers bit-identical to in-process "
              "serving\n",
              mix.size());
  return 0;
}

int CmdLoadtest(const tools::OptionSet& opts) {
  if (opts.positional().empty()) {
    opts.PrintHelp(stderr);
    return 2;
  }
  const std::string dir = opts.positional()[0];

  std::printf("rebuilding testbed retrieval stack...\n");
  pipeline::Testbed testbed(ConfigFor(opts));

  long long requested = opts.GetInt("requests");
  if (requested <= 0) {
    std::fprintf(stderr, "error: --requests must be positive\n");
    return 2;
  }
  size_t num_requests = static_cast<size_t>(requested);
  double skew = opts.GetDouble("skew");

  if (testbed.recommender().popularity().counts().empty()) {
    std::fprintf(stderr, "error: empty query log\n");
    return 1;
  }
  // Zipf-distributed replay mix over the log's popularity order — the
  // same traffic shape bench_serving_throughput measures.
  util::Rng rng(static_cast<uint64_t>(opts.GetInt("seed")));
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);

  if (!opts.GetString("connect").empty()) {
    return CmdLoadtestRemote(opts, dir, testbed, mix);
  }

  serving::ServingConfig config = ServingConfigFor(opts);
  config.queue_capacity = num_requests;
  OpenedStore opened = OpenStoreForServing(opts, dir, config);
  if (!opened.ok) return 1;
  std::unique_ptr<store::DiversificationStore>& store = opened.heap;
  std::shared_ptr<const store::MappedStoreFile> mapped = opened.mapped;
  if (store != nullptr) RecompilePlansForServing(store.get(), testbed, config);

  std::unique_ptr<obs::Tracer> tracer = MakeTracer(opts, 64);
  std::vector<std::unique_ptr<serving::StoreRefresher>> refreshers;
  std::unique_ptr<cluster::ShardedCluster> cl = MakeCluster(
      opts, dir, store.get(), mapped, testbed, config, &refreshers);
  std::unique_ptr<serving::ServingNode> node;
  if (cl == nullptr) {
    node = mapped != nullptr
               ? std::make_unique<serving::ServingNode>(
                     store::StoreSnapshot::FromMapped(std::move(mapped)),
                     &testbed.searcher(), &testbed.snippets(),
                     &testbed.analyzer(), &testbed.corpus().store, config)
               : std::make_unique<serving::ServingNode>(store.get(), &testbed,
                                                        config);
    auto refresher = MakeRefresher(opts, dir, node.get(), testbed);
    if (refresher != nullptr) refreshers.push_back(std::move(refresher));
  }
  if (tracer != nullptr) {
    if (cl != nullptr) {
      cl->set_tracer(tracer.get());
    } else {
      node->set_tracer(tracer.get());
    }
  }
  const obs::MetricsRegistry& registry =
      cl != nullptr ? cl->metrics() : node->metrics();

  // --metrics-out: a Prometheus-text snapshot of the registry, written
  // periodically while the replay runs (a scrape target on disk) and
  // once more after the drain so the file always ends complete.
  const std::string metrics_out = opts.GetString("metrics-out");
  auto write_metrics = [&] {
    if (metrics_out.empty()) return;
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   metrics_out.c_str());
      return;
    }
    std::string text = registry.RenderPrometheus();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  };
  std::atomic<bool> replay_done{false};
  std::thread metrics_writer;
  if (!metrics_out.empty()) {
    metrics_writer = std::thread([&] {
      while (!replay_done.load(std::memory_order_acquire)) {
        write_metrics();
        for (int i = 0; i < 5; ++i) {
          if (replay_done.load(std::memory_order_acquire)) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    });
  }

  std::printf("replaying %zu requests (skew %.2f) on %zu shard(s) x %zu "
              "workers...\n",
              num_requests, skew, cl != nullptr ? cl->num_shards() : 1,
              cl != nullptr ? cl->shard(0)->config().num_workers
                            : node->config().num_workers);

  // Both tiers replay through the one Frontend overload — the same
  // code path a RemoteClient takes in --connect mode.
  serving::Frontend* frontend =
      cl != nullptr ? static_cast<serving::Frontend*>(cl.get())
                    : static_cast<serving::Frontend*>(node.get());
  serving::ReplayOutcome out = serving::ReplayMix(frontend, mix);
  replay_done.store(true, std::memory_order_release);
  if (metrics_writer.joinable()) metrics_writer.join();
  std::printf("replayed %zu/%zu requests in %.1f ms (%.0f QPS)\n",
              out.accepted, num_requests, out.wall_ms, out.qps);
  for (const auto& refresher : refreshers) refresher->Stop();
  if (cl != nullptr) {
    PrintClusterStats(cl->Stats());
  } else {
    PrintServingStats(node->Stats());
  }
  PrintStageBreakdown(registry);
  if (tracer != nullptr) PrintTraces(*tracer);
  for (const auto& refresher : refreshers) PrintRefresherStats(*refresher);
  write_metrics();  // final, post-drain snapshot
  if (!metrics_out.empty()) {
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}

/// `optselect stats` — the observability probe: a deterministic,
/// strictly sequential replay on a single node, then the full metrics
/// dump. Sequential (one request in flight) and cache-off by default,
/// so every request runs every stage and the per-stage p50s sum to the
/// e2e p50 — the self-check that the stage timers actually tile a
/// request's lifetime.
int CmdStats(const tools::OptionSet& opts) {
  if (opts.positional().empty()) {
    opts.PrintHelp(stderr);
    return 2;
  }
  const std::string dir = opts.positional()[0];
  std::unique_ptr<store::DiversificationStore> store = LoadStoreOrDie(dir);
  if (store == nullptr) return 1;

  const std::string format = opts.GetString("format");
  if (format != "table" && format != "prom" && format != "json") {
    std::fprintf(stderr, "error: --format must be table, prom, or json\n");
    return 2;
  }
  bool table = format == "table";
  // prom/json dumps go to stdout; progress chatter must not pollute
  // them.
  std::FILE* chatter = table ? stdout : stderr;

  std::fprintf(chatter, "rebuilding testbed retrieval stack...\n");
  pipeline::Testbed testbed(ConfigFor(opts));

  size_t num_requests = opts.GetSize("requests");
  if (num_requests == 0) {
    std::fprintf(stderr, "error: --requests must be positive\n");
    return 2;
  }
  double skew = opts.GetDouble("skew");
  if (testbed.recommender().popularity().counts().empty()) {
    std::fprintf(stderr, "error: empty query log\n");
    return 1;
  }
  util::Rng rng(static_cast<uint64_t>(opts.GetInt("seed")));
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      testbed.recommender().popularity(), num_requests, skew, &rng);

  serving::ServingConfig config = ServingConfigFor(opts);
  // Cache OFF by default (unlike serve/loadtest): a cache hit skips
  // store-read and select, and the stage-sum identity only holds when
  // every request runs the same stages.
  config.enable_cache = opts.IsSet("cache") && opts.GetBool("cache");
  config.queue_capacity = std::max<size_t>(config.queue_capacity, 64);
  RecompilePlansForServing(store.get(), testbed, config);

  std::unique_ptr<obs::Tracer> tracer = MakeTracer(opts, 16);
  serving::ServingNode node(store.get(), &testbed, config);
  if (tracer != nullptr) node.set_tracer(tracer.get());

  std::fprintf(chatter, "sequential replay: %zu requests (skew %.2f)...\n",
               num_requests, skew);
  serving::ReplayOutcome out = serving::ReplaySequential(
      [&](const std::string& query) { return node.Serve(query); }, mix,
      nullptr, nullptr);
  // Drain the workers before reading the registry: the reply span is
  // recorded *after* the completion callback unblocks the client, so
  // without the drain the last request's reply sample may be mid-air.
  node.Shutdown();

  if (format == "prom") {
    std::printf("%s", node.metrics().RenderPrometheus().c_str());
    return 0;
  }
  if (format == "json") {
    std::printf("%s\n", node.metrics().RenderJson().c_str());
    return 0;
  }
  std::printf("replayed %zu requests in %.1f ms (%.0f QPS, sequential)\n",
              out.accepted, out.wall_ms, out.qps);
  PrintServingStats(node.Stats());
  PrintStageBreakdown(node.metrics());
  if (tracer != nullptr) {
    PrintTraces(*tracer);
  } else {
    std::printf(
        "(no traces: tracing is compiled out of this build — rebuild "
        "with -DOPTSELECT_TRACING=ON, or a Debug build)\n");
  }
  return 0;
}

// ------------------------------------------------ chaos, process level

/// argv[0], for self-exec of shard server processes (chaos --net).
const char* g_argv0 = "optselect";

/// Forks one `serve --listen` shard server process over <dir> (its
/// stdout+stderr go to <dir>/shard<i>.log). Returns the child pid, or
/// -1 on fork failure. The child inherits the parent's testbed and
/// serving params so its answers are bit-identical by construction.
pid_t SpawnShardServer(const tools::OptionSet& opts, const std::string& dir,
                       size_t index, size_t shards,
                       const std::string& listen_port,
                       const std::string& port_file) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::string log = dir + "/shard" + std::to_string(index) + ".log";
  int fd = open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    dup2(fd, 1);
    dup2(fd, 2);
    close(fd);
  }
  char c_buf[64];
  char lambda_buf[64];
  std::snprintf(c_buf, sizeof(c_buf), "%g", opts.GetDouble("c"));
  std::snprintf(lambda_buf, sizeof(lambda_buf), "%g",
                opts.GetDouble("lambda"));
  std::vector<std::string> args = {
      g_argv0,
      "serve",
      dir,
      "--listen",
      listen_port,
      "--port-file",
      port_file,
      "--shard-index",
      std::to_string(index),
      "--num-shards",
      std::to_string(shards),
      "--workers",
      "1",
      "--topics",
      std::to_string(opts.GetSize("topics")),
      "--seed",
      std::to_string(opts.GetInt("seed")),
      "--candidates",
      std::to_string(opts.GetSize("candidates")),
      "--c",
      c_buf,
      "--lambda",
      lambda_buf,
      "--k",
      std::to_string(opts.GetSize("k")),
      "--streaming",
      opts.GetBool("streaming") ? "1" : "0"};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  execvp(g_argv0, argv.data());
  _exit(127);
}

/// Polls a WritePortFile-published port (~30 s), watching the child so
/// a crashed server fails fast instead of timing out.
bool WaitForPortFile(const std::string& path, pid_t pid, uint16_t* port) {
  for (int i = 0; i < 600; ++i) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      unsigned value = 0;
      int got = std::fscanf(f, "%u", &value);
      std::fclose(f);
      if (got == 1 && value > 0 && value <= 65535) {
        *port = static_cast<uint16_t>(value);
        return true;
      }
    }
    if (waitpid(pid, nullptr, WNOHANG) == pid) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

/// `chaos --net <dir>`: the failover contract proven across real
/// process boundaries. Spawns one `serve --listen` process per shard
/// (each holding its SplitStore slice), replays a seeded mix through a
/// RemoteFrontend, SIGKILLs a shard mid-replay — zero drops, breaker
/// opens, degraded answers equal the store-less DPH passthrough,
/// healthy keys bit-identical — then respawns it on the same port and
/// requires full bit-identical recovery.
int CmdChaosNet(const tools::OptionSet& opts, const std::string& dir) {
  size_t requests = opts.IsSet("requests") ? opts.GetSize("requests") : 400;
  size_t shards = opts.IsSet("shards") ? opts.GetSize("shards") : 2;
  if (requests < 64 || shards < 2) {
    std::fprintf(stderr,
                 "error: chaos needs --requests >= 64 and --shards >= 2 "
                 "(something must stay alive while something dies)\n");
    return 2;
  }
  {
    auto probe = store::DiversificationStore::Load(dir + "/store.bin");
    if (!probe.ok()) {
      std::fprintf(stderr, "error: %s (run `optselect generate %s` first)\n",
                   probe.status().ToString().c_str(), dir.c_str());
      return 1;
    }
  }

  std::printf("rebuilding testbed retrieval stack...\n");
  pipeline::Testbed testbed(ConfigFor(opts));
  serving::ServingConfig node = ServingConfigFor(opts);
  const querylog::PopularityMap& popularity =
      testbed.recommender().popularity();
  if (popularity.counts().empty()) {
    std::fprintf(stderr, "error: empty query log\n");
    return 1;
  }
  util::Rng rng(static_cast<uint64_t>(opts.GetInt("seed")));
  std::vector<std::string> mix = querylog::ZipfQueryMix(
      popularity, requests, opts.GetDouble("skew"), &rng);

  // Degraded answers must equal what a store-less node serves (the
  // PR 5 contract, shared with the in-process harness).
  std::unordered_map<std::string, uint64_t> passthrough =
      cluster::BuildPassthroughHashes(&testbed, node, mix);

  std::vector<pid_t> pids(shards, -1);
  std::vector<uint16_t> ports(shards, 0);
  auto kill_fleet = [&] {
    for (pid_t& pid : pids) {
      if (pid > 0) {
        kill(pid, SIGTERM);
        waitpid(pid, nullptr, 0);
        pid = -1;
      }
    }
  };
  for (size_t i = 0; i < shards; ++i) {
    std::string port_file = dir + "/shard" + std::to_string(i) + ".port";
    std::remove(port_file.c_str());
    pids[i] = SpawnShardServer(opts, dir, i, shards, "0", port_file);
    if (pids[i] <= 0) {
      std::fprintf(stderr, "error: fork failed for shard %zu\n", i);
      kill_fleet();
      return 1;
    }
  }
  for (size_t i = 0; i < shards; ++i) {
    std::string port_file = dir + "/shard" + std::to_string(i) + ".port";
    if (!WaitForPortFile(port_file, pids[i], &ports[i])) {
      std::fprintf(stderr,
                   "error: shard %zu never published its port (see "
                   "%s/shard%zu.log)\n",
                   i, dir.c_str(), i);
      kill_fleet();
      return 1;
    }
  }
  std::printf("spawned %zu shard servers:", shards);
  for (uint16_t port : ports) {
    std::printf(" 127.0.0.1:%u", static_cast<unsigned>(port));
  }
  std::printf("\n");

  std::vector<net::Endpoint> endpoints;
  for (uint16_t port : ports) {
    endpoints.push_back(net::Endpoint{"127.0.0.1", port});
  }
  net::RemoteFrontendConfig rc;
  rc.breaker_threshold = 2;
  rc.breaker_probe_after = 2;
  net::RemoteFrontend remote(endpoints, rc);

  bool failed = false;
  auto check = [&](bool ok, const char* what, size_t count) {
    if (ok) {
      std::printf("OK: %s\n", what);
    } else {
      std::fprintf(stderr, "FATAL: %s (%zu)\n", what, count);
      failed = true;
    }
  };

  // Phase A: healthy replay — nothing may fail or degrade.
  std::vector<uint64_t> healthy(mix.size(), 0);
  size_t a_failed = 0;
  size_t a_degraded = 0;
  serving::ReplayOutcome out_a = serving::ReplaySequential(
      &remote, mix, nullptr,
      [&](size_t i, const serving::ServeResult& r) {
        if (!r.ok) ++a_failed;
        if (r.degraded) ++a_degraded;
        healthy[i] = cluster::RankingHash(r.ranking);
      });
  std::printf("phase A (healthy): %zu requests, %.0f QPS\n", out_a.accepted,
              out_a.qps);
  check(a_failed == 0, "healthy replay: zero failures", a_failed);
  check(a_degraded == 0, "healthy replay: zero degraded", a_degraded);

  // Phase B: SIGKILL a shard halfway through. Its keys must degrade to
  // the passthrough; every other answer stays bit-identical.
  const size_t victim = 0;
  const size_t kill_at = mix.size() / 2;
  size_t b_failed = 0;
  size_t b_degraded = 0;
  size_t degraded_divergences = 0;
  size_t healthy_divergences = 0;
  serving::ReplayOutcome out_b = serving::ReplaySequential(
      &remote, mix,
      [&](size_t i) {
        if (i == kill_at && pids[victim] > 0) {
          std::printf("  SIGKILL shard %zu (pid %d) at request %zu\n",
                      victim, static_cast<int>(pids[victim]), i);
          kill(pids[victim], SIGKILL);
          waitpid(pids[victim], nullptr, 0);
          pids[victim] = -1;
        }
      },
      [&](size_t i, const serving::ServeResult& r) {
        if (!r.ok) {
          ++b_failed;
          return;
        }
        if (r.degraded) {
          ++b_degraded;
          auto it = passthrough.find(mix[i]);
          if (it == passthrough.end() ||
              cluster::RankingHash(r.ranking) != it->second) {
            ++degraded_divergences;
          }
        } else if (cluster::RankingHash(r.ranking) != healthy[i]) {
          ++healthy_divergences;
        }
      });
  std::printf("phase B (shard %zu killed): %zu requests, %zu degraded\n",
              victim, out_b.accepted, b_degraded);
  check(b_failed == 0, "zero dropped requests with a dead shard", b_failed);
  check(b_degraded > 0, "dead-owner keys were actually degraded", 0);
  check(degraded_divergences == 0,
        "degraded answers equal the DPH passthrough", degraded_divergences);
  check(healthy_divergences == 0,
        "live-shard answers bit-identical to the healthy run",
        healthy_divergences);
  check(remote.stats().breaker_opens > 0,
        "a breaker opened while the shard was dead", 0);

  // Phase C: respawn the shard on its old port (SO_REUSEADDR makes the
  // rebind immediate).
  std::string respawn_file =
      dir + "/shard" + std::to_string(victim) + ".respawn.port";
  std::remove(respawn_file.c_str());
  pids[victim] = SpawnShardServer(opts, dir, victim, shards,
                                  std::to_string(ports[victim]),
                                  respawn_file);
  uint16_t respawn_port = 0;
  if (pids[victim] <= 0 ||
      !WaitForPortFile(respawn_file, pids[victim], &respawn_port) ||
      respawn_port != ports[victim]) {
    std::fprintf(stderr, "error: shard %zu failed to respawn on port %u\n",
                 victim, static_cast<unsigned>(ports[victim]));
    kill_fleet();
    return 1;
  }
  std::printf("phase C: shard %zu respawned on port %u\n", victim,
              static_cast<unsigned>(respawn_port));

  // Warm the breaker shut: after breaker_probe_after skipped routing
  // decisions a half-open probe reconnects the owner.
  std::string victim_key;
  for (const std::string& query : mix) {
    if (remote.OwnerOf(query) == victim) {
      victim_key = query;
      break;
    }
  }
  bool recovered = victim_key.empty();
  for (size_t i = 0; i < 32 && !recovered; ++i) {
    serving::Response r = remote.Submit(serving::Request(victim_key));
    recovered = r.ok && !r.degraded;
  }
  check(recovered, "owner recovered after respawn (probe reconnected)", 0);

  // Phase D: post-recovery replay — bit-identical to the healthy run.
  size_t d_failed = 0;
  size_t d_degraded = 0;
  size_t d_divergences = 0;
  serving::ReplaySequential(
      &remote, mix, nullptr,
      [&](size_t i, const serving::ServeResult& r) {
        if (!r.ok) {
          ++d_failed;
          return;
        }
        if (r.degraded) ++d_degraded;
        if (cluster::RankingHash(r.ranking) != healthy[i]) ++d_divergences;
      });
  check(d_failed == 0, "recovered replay: zero failures", d_failed);
  check(d_degraded == 0, "recovered replay: zero degraded", d_degraded);
  check(d_divergences == 0,
        "recovered replay bit-identical to the healthy run", d_divergences);

  net::RemoteFrontendStats rs = remote.stats();
  std::printf(
      "remote frontend: %llu serves, %llu degraded, %llu dropped, %llu "
      "probes, %llu breaker opens, %llu reconnects\n",
      static_cast<unsigned long long>(rs.serves),
      static_cast<unsigned long long>(rs.degraded),
      static_cast<unsigned long long>(rs.dropped),
      static_cast<unsigned long long>(rs.probes),
      static_cast<unsigned long long>(rs.breaker_opens),
      static_cast<unsigned long long>(rs.reconnects));
  kill_fleet();
  return failed ? 1 : 0;
}

int CmdChaos(const tools::OptionSet& opts) {
  const std::string net_dir = opts.GetString("net");
  if (!net_dir.empty()) return CmdChaosNet(opts, net_dir);

  if (!serving::FaultInjectionCompiledIn()) {
    std::fprintf(stderr,
                 "error: the fault-injection hooks are compiled out of "
                 "this build; `chaos` needs them to take shards down.\n"
                 "Rebuild with -DOPTSELECT_FAULT_INJECTION=ON (Debug "
                 "builds compile them in by default).\n");
    return 1;
  }
  size_t requests = opts.GetSize("requests");
  size_t shards = opts.GetSize("shards");
  if (requests < 64 || shards < 2) {
    std::fprintf(stderr,
                 "error: chaos needs --requests >= 64 and --shards >= 2 "
                 "(something must stay alive while something dies)\n");
    return 2;
  }

  std::printf("building testbed + store...\n");
  pipeline::Testbed testbed(ConfigFor(opts));
  serving::ServingConfig node = ServingConfigFor(opts);

  // Build the store in-memory with plans compiled at the node's exact
  // serving params, like `generate` + `serve` with matching flags.
  std::vector<std::string> roots;
  for (const auto& topic : testbed.universe().topics) {
    roots.push_back(topic.root_query);
  }
  store::StoreBuilderOptions store_opts;
  store_opts.plan.num_candidates = node.params.num_candidates;
  store_opts.plan.threshold_c = node.params.threshold_c;
  store::DiversificationStore store;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, store_opts, &store);
  if (store.size() < 2) {
    std::fprintf(stderr, "error: testbed mined %zu stored entries; need "
                         ">= 2 (raise --topics)\n",
                 store.size());
    return 1;
  }

  cluster::ChaosConfig chaos;
  chaos.requests = requests;
  chaos.zipf_skew = opts.GetDouble("skew");
  chaos.seed = static_cast<uint64_t>(opts.GetInt("seed"));
  chaos.num_shards = shards;
  // Historical chaos default: 2 hot keys replicated (the hedge check
  // needs replicas), while serve/loadtest default to 0.
  chaos.replicate_hot =
      opts.IsSet("replicate-hot") ? opts.GetSize("replicate-hot") : 2;
  chaos.node = node;
  chaos.failover.hedge_delay = std::chrono::microseconds(
      static_cast<long long>(opts.GetDouble("hedge-ms") * 1000.0));
  chaos.slow_read_delay = std::chrono::microseconds(
      static_cast<long long>(opts.GetDouble("slow-ms") * 1000.0));
  chaos.schedule = cluster::DefaultChaosSchedule(requests, shards);
  chaos.trace_sample_every =
      opts.IsSet("trace-every")
          ? static_cast<uint64_t>(opts.GetInt("trace-every"))
          : 16;

  const querylog::PopularityMap& popularity =
      testbed.recommender().popularity();
  std::vector<std::string> mix = cluster::BuildChaosMix(popularity, chaos);

  // The hedge counter is enforced only when the scenario *guarantees*
  // at least one hedge (see CountHedgeOpportunities) — a small or
  // unlucky mix, or delays that make hedging moot, report instead of
  // failing.
  size_t hedge_opportunities =
      cluster::CountHedgeOpportunities(store, popularity, mix, chaos);

  // Per-query passthrough references: what a store-less node answers —
  // the exact ranking a degraded (dead-owner) answer must carry.
  std::unordered_map<std::string, uint64_t> passthrough =
      cluster::BuildPassthroughHashes(&testbed, node, mix);

  cluster::ChaosConfig calm = chaos;
  calm.schedule.clear();
  std::printf("no-fault reference run (%zu requests, %zu shards)...\n",
              requests, shards);
  cluster::ChaosReport no_fault = cluster::RunChaosScenario(
      store, &testbed, &popularity, mix, calm);
  std::printf("chaos run A (%zu scheduled events)...\n",
              chaos.schedule.size());
  cluster::ChaosReport run_a = cluster::RunChaosScenario(
      store, &testbed, &popularity, mix, chaos);
  std::printf("chaos run B (same seed)...\n");
  cluster::ChaosReport run_b = cluster::RunChaosScenario(
      store, &testbed, &popularity, mix, chaos);

  cluster::ChaosVerdict verdict = cluster::VerifyChaosRuns(
      run_a, run_b, no_fault, mix, passthrough);

  util::TablePrinter tp;
  tp.SetHeader({"run", "wall ms", "QPS", "degraded", "dropped", "hedges",
                "probes", "opens", "transitions"});
  auto report_row = [&](const std::string& name,
                        const cluster::ChaosReport& r) {
    tp.AddRow({name, util::TablePrinter::Num(r.wall_ms, 1),
               util::TablePrinter::Num(r.qps, 0),
               std::to_string(r.degraded), std::to_string(r.dropped),
               std::to_string(r.router.hedges_won) + "/" +
                   std::to_string(r.router.hedges_launched),
               std::to_string(r.router.probes),
               std::to_string(r.router.breaker_opens),
               std::to_string(r.transitions.size())});
  };
  report_row("no-fault", no_fault);
  report_row("chaos A", run_a);
  report_row("chaos B", run_b);
  std::printf("%s", tp.ToString().c_str());

  std::printf("breaker transitions (run A):\n");
  for (const cluster::BreakerTransition& t : run_a.transitions) {
    std::printf("  #%llu shard %zu: %s -> %s\n",
                static_cast<unsigned long long>(t.seq), t.shard,
                cluster::BreakerStateName(t.from),
                cluster::BreakerStateName(t.to));
  }

  bool failed = false;
  auto check = [&](bool ok, const char* what, size_t count) {
    if (ok) {
      std::printf("OK: %s\n", what);
    } else {
      std::fprintf(stderr, "FATAL: %s (%zu)\n", what, count);
      failed = true;
    }
  };
  check(verdict.dropped == 0, "zero dropped requests", verdict.dropped);
  check(verdict.outcome_mismatches == 0,
        "request outcomes deterministic across two same-seed runs",
        verdict.outcome_mismatches);
  check(verdict.transition_mismatches == 0,
        "breaker transition log deterministic",
        verdict.transition_mismatches);
  check(verdict.healthy_divergences == 0,
        "healthy-key rankings bit-identical to the no-fault run",
        verdict.healthy_divergences);
  check(verdict.degraded_divergences == 0,
        "degraded answers equal the DPH passthrough",
        verdict.degraded_divergences);
  check(verdict.breaker_opened, "a breaker opened while a shard was dead",
        0);
  check(run_a.degraded > 0, "dead-owner keys were actually degraded",
        0);
  if (hedge_opportunities > 0) {
    check(run_a.router.hedges_launched > 0,
          "hedged retries fired during the slow-read window", 0);
  } else {
    std::printf(
        "SKIP: hedge check — the scenario guarantees no hedge (no "
        "replicated key round-robins onto a slowed shard during the "
        "slow window, or --slow-ms is not >= 2x --hedge-ms)\n");
  }

  // Trace invariants (only meaningful with tracing compiled in): the
  // sampled traces must retell exactly the story the report recorded.
  if (obs::TracingCompiledIn()) {
    cluster::TraceVerdict tv =
        cluster::VerifyTraceInvariants(run_a, run_b, chaos);
    check(tv.sampled_a == tv.sampled_expected &&
              tv.sampled_b == tv.sampled_expected,
          "every sampled request traced exactly once",
          tv.sampled_a + tv.sampled_b);
    check(tv.outcome_mismatches == 0,
          "traced outcomes match the report's outcome vector",
          tv.outcome_mismatches);
    check(tv.breaker_mismatches == 0,
          "tracer breaker log mirrors the router transition log",
          tv.breaker_mismatches);
    check(tv.cross_run_mismatches == 0,
          "sampled trace sequences identical across the two runs",
          tv.cross_run_mismatches);
  } else {
    std::printf(
        "SKIP: trace invariants — tracing compiled out (rebuild with "
        "-DOPTSELECT_TRACING=ON, or a Debug build)\n");
  }

  // Streaming-under-chaos: the scenarios above compile plans at the
  // node's exact params, so stored queries never reach the streaming
  // cold path. Re-run the same faulted mix over a plans-off store —
  // every stored query now scans-and-maintains — and require the
  // replays to stay deterministic with the streaming selector in the
  // loop.
  std::printf("streaming cold-path scenario (plans-off store)...\n");
  store::StoreBuilderOptions cold_opts;
  cold_opts.compile_plans = false;
  store::DiversificationStore cold_store;
  store::BuildStore(testbed.detector(), testbed.searcher(),
                    testbed.snippets(), testbed.analyzer(),
                    testbed.corpus().store, roots, cold_opts, &cold_store);
  cluster::ChaosReport cold_a = cluster::RunChaosScenario(
      cold_store, &testbed, &popularity, mix, chaos);
  cluster::ChaosReport cold_b = cluster::RunChaosScenario(
      cold_store, &testbed, &popularity, mix, chaos);
  size_t cold_mismatches = 0;
  for (size_t i = 0; i < cold_a.outcomes.size(); ++i) {
    if (!(cold_a.outcomes[i] == cold_b.outcomes[i])) ++cold_mismatches;
  }
  check(cold_a.streaming_served > 0,
        "streaming cold path actually served under chaos",
        static_cast<size_t>(cold_a.streaming_served));
  check(cold_a.streaming_served == cold_b.streaming_served,
        "streaming-served counts identical across same-seed runs",
        static_cast<size_t>(cold_a.streaming_served +
                            cold_b.streaming_served));
  check(cold_mismatches == 0,
        "streaming-mode replays deterministic (A == B outcome vectors)",
        cold_mismatches);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    PrintUsage(stdout);
    return 0;
  }

  // Serving-family subcommands parse through their typed OptionSet:
  // generated `--help`, typed validation, exit 2 on a bad flag.
  if (cmd == "serve" || cmd == "loadtest" || cmd == "stats" ||
      cmd == "chaos") {
    tools::OptionSet opts = cmd == "serve"      ? ServeOptions()
                            : cmd == "loadtest" ? LoadtestOptions()
                            : cmd == "stats"    ? StatsOptions()
                                                : ChaosOptions();
    if (!opts.Parse(argc, argv, 2)) {
      std::fprintf(stderr, "error: %s\n\n", opts.error().c_str());
      opts.PrintHelp(stderr);
      return 2;
    }
    if (opts.help_requested()) {
      opts.PrintHelp(stdout);
      return 0;
    }
    if (cmd == "serve") return CmdServe(opts);
    if (cmd == "loadtest") return CmdLoadtest(opts);
    if (cmd == "stats") return CmdStats(opts);
    return CmdChaos(opts);
  }

  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  Flags flags = Flags::Parse(argc, argv, 2);
  if (cmd == "generate") {
    if (!flags.Validate("generate",
                        {"topics", "seed", "candidates", "c", "plans"})) {
      return Usage();
    }
    return CmdGenerate(flags);
  }
  if (cmd == "mine") {
    if (!flags.Validate("mine", {"min-freq"})) return Usage();
    return CmdMine(flags);
  }
  if (cmd == "run") {
    if (!flags.Validate("run",
                        {"algo", "c", "lambda", "k", "topics", "seed"})) {
      return Usage();
    }
    return CmdRun(flags);
  }
  if (cmd == "evaluate") {
    if (!flags.Validate("evaluate", {})) return Usage();
    return CmdEvaluate(flags);
  }
  std::fprintf(stderr, "error: unknown subcommand `%s`\n\n", cmd.c_str());
  return Usage();
}
