// Typed command-line option parser shared by the optselect CLI's
// serving-family subcommands (serve / loadtest / stats / chaos).
//
// Before this header each subcommand kept its own copy of the flag
// list (one in the parser allow-list, one in PrintUsage, one at every
// atoi call site) — three places to update per flag, and serve/
// loadtest had drifted. An OptionSet declares each flag exactly once
// with its type, default, and help line; parsing, validation
// ("unknown flag", "needs a value", "not a number"), and `--help`
// generation all derive from that single declaration. Bad invocations
// keep the historical contract: the caller prints the error and exits
// with status 2.
//
// The serving-family flag *sets* (serving knobs, cluster shape, store
// refresh, and the network edge's --listen/--connect/--max-conns
// family) are registered by the Add*Options helpers below, so a flag
// shared by two subcommands is declared once here, not copy-pasted.

#ifndef OPTSELECT_TOOLS_OPTIONS_H_
#define OPTSELECT_TOOLS_OPTIONS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace optselect {
namespace tools {

/// One subcommand's typed flag declarations + parsed values.
class OptionSet {
 public:
  /// `synopsis` is the positional-argument part of the usage line
  /// (e.g. "<dir>"); `summary` is the one-line subcommand description.
  OptionSet(std::string subcommand, std::string synopsis,
            std::string summary)
      : subcommand_(std::move(subcommand)),
        synopsis_(std::move(synopsis)),
        summary_(std::move(summary)) {}

  /// Starts a titled group in the generated help (registration order).
  void Group(const std::string& title) { current_group_ = title; }

  void AddString(const std::string& name, const std::string& fallback,
                 const std::string& help) {
    Add(name, Kind::kString, fallback, help);
  }
  void AddInt(const std::string& name, long long fallback,
              const std::string& help) {
    Add(name, Kind::kInt, std::to_string(fallback), help);
  }
  void AddDouble(const std::string& name, double fallback,
                 const std::string& help) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", fallback);
    Add(name, Kind::kDouble, buf, help);
  }
  /// A 0|1 flag (every optselect boolean takes an explicit value).
  void AddBool(const std::string& name, bool fallback,
               const std::string& help) {
    Add(name, Kind::kBool, fallback ? "1" : "0", help);
  }

  /// Parses argv[start..). False on any problem (unknown flag, missing
  /// value, type mismatch) with the reason in error(). `--help` / `-h`
  /// set help_requested() and stop parsing successfully.
  bool Parse(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        help_requested_ = true;
        return true;
      }
      if (std::strncmp(arg, "--", 2) != 0) {
        positional_.push_back(arg);
        continue;
      }
      Option* option = Find(arg + 2);
      if (option == nullptr) {
        error_ = "unknown flag --" + std::string(arg + 2) + " for `" +
                 subcommand_ + "`";
        return false;
      }
      if (i + 1 >= argc) {
        error_ = std::string(arg) + " needs a value";
        return false;
      }
      const char* value = argv[++i];
      if (!TypeChecks(*option, value)) {
        error_ = "--" + option->name + " expects " + KindName(option->kind) +
                 ", got \"" + value + "\"";
        return false;
      }
      option->value = value;
      option->is_set = true;
    }
    return true;
  }

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& subcommand() const { return subcommand_; }

  bool IsSet(const std::string& name) const {
    const Option* option = Find(name);
    return option != nullptr && option->is_set;
  }

  std::string GetString(const std::string& name) const {
    const Option* option = Find(name);
    return option == nullptr ? "" : option->value;
  }

  long long GetInt(const std::string& name) const {
    const Option* option = Find(name);
    return option == nullptr ? 0 : std::atoll(option->value.c_str());
  }

  /// Int flag as a size: negative values fall back to the default
  /// (mirrors the historical SizeFlag clamping).
  size_t GetSize(const std::string& name) const {
    const Option* option = Find(name);
    if (option == nullptr) return 0;
    long long v = std::atoll(option->value.c_str());
    if (v < 0) v = std::atoll(option->fallback.c_str());
    return static_cast<size_t>(v);
  }

  double GetDouble(const std::string& name) const {
    const Option* option = Find(name);
    return option == nullptr ? 0.0 : std::atof(option->value.c_str());
  }

  bool GetBool(const std::string& name) const {
    const Option* option = Find(name);
    return option != nullptr && option->value != "0";
  }

  /// Generated from the declarations: usage line, summary, then one
  /// aligned row per flag (grouped, registration order) with type and
  /// default.
  void PrintHelp(std::FILE* out) const {
    std::fprintf(out, "usage: optselect %s %s [flags]\n\n%s\n",
                 subcommand_.c_str(), synopsis_.c_str(), summary_.c_str());
    std::string group;
    for (const Option& option : options_) {
      if (option.group != group) {
        group = option.group;
        std::fprintf(out, "\n%s:\n", group.c_str());
      }
      std::string left = "--" + option.name + " <" +
                         KindName(option.kind) + ">";
      std::fprintf(out, "  %-28s %s (default %s)\n", left.c_str(),
                   option.help.c_str(), option.fallback.c_str());
    }
  }

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Option {
    std::string name;
    Kind kind = Kind::kString;
    std::string fallback;
    std::string help;
    std::string group;
    std::string value;  // fallback until set
    bool is_set = false;
  };

  static const char* KindName(Kind kind) {
    switch (kind) {
      case Kind::kString:
        return "str";
      case Kind::kInt:
        return "int";
      case Kind::kDouble:
        return "num";
      case Kind::kBool:
        return "0|1";
    }
    return "?";
  }

  static bool TypeChecks(const Option& option, const char* value) {
    char* end = nullptr;
    switch (option.kind) {
      case Kind::kString:
        return true;
      case Kind::kInt:
        std::strtoll(value, &end, 10);
        return end != value && *end == '\0';
      case Kind::kDouble:
        std::strtod(value, &end);
        return end != value && *end == '\0';
      case Kind::kBool:
        return std::strcmp(value, "0") == 0 || std::strcmp(value, "1") == 0;
    }
    return false;
  }

  void Add(const std::string& name, Kind kind, std::string fallback,
           const std::string& help) {
    Option option;
    option.name = name;
    option.kind = kind;
    option.value = fallback;
    option.fallback = std::move(fallback);
    option.help = help;
    option.group = current_group_;
    options_.push_back(std::move(option));
  }

  Option* Find(const std::string& name) {
    for (Option& option : options_) {
      if (option.name == name) return &option;
    }
    return nullptr;
  }
  const Option* Find(const std::string& name) const {
    return const_cast<OptionSet*>(this)->Find(name);
  }

  std::string subcommand_;
  std::string synopsis_;
  std::string summary_;
  std::string current_group_ = "flags";
  std::vector<Option> options_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

/// Testbed shape shared by every subcommand that regenerates it.
inline void AddTestbedOptions(OptionSet* opts) {
  opts->Group("testbed (must match `generate`)");
  opts->AddInt("topics", 20, "planted ambiguous topics");
  opts->AddInt("seed", 17, "testbed seed (also seeds replay mixes)");
}

/// The per-node serving knobs shared by serve/loadtest/stats/chaos.
inline void AddServingOptions(OptionSet* opts) {
  opts->Group("serving");
  opts->AddInt("workers", 0, "worker threads (0 = hw concurrency)");
  opts->AddInt("batch", 8, "micro-batch size (1 disables)");
  opts->AddBool("cache", true, "result cache");
  opts->AddInt("cache-capacity", 4096, "cached rankings");
  opts->AddInt("candidates", 200, "|R_q| retrieved per query");
  opts->AddInt("k", 10, "ranking depth");
  opts->AddDouble("c", 0.3, "utility threshold c");
  opts->AddDouble("lambda", 0.15, "trade-off lambda");
  opts->AddBool("streaming", true,
                "streaming cold path for plan-less stored queries");
  opts->AddInt("trace-every", 1,
               "deterministic 1-in-N request trace sampling");
}

/// Mapped-store (v4 zero-copy) knobs, for the subcommands that serve
/// off the mapping (serve/loadtest).
inline void AddMapOptions(OptionSet* opts) {
  opts->Group("mapped store (v4)");
  opts->AddString("map-warmup", "none",
                  "page warm-up for the v4 mapping: none|madvise|mlock "
                  "(mlock falls back to madvise when refused)");
}

/// In-process sharded-cluster shape (serve/loadtest).
inline void AddClusterOptions(OptionSet* opts) {
  opts->Group("sharded cluster (default: one node)");
  opts->AddInt("shards", 1, "hash-partition the store over N shards");
  opts->AddInt("replicate-hot", 0,
               "replicate the K hottest stored queries onto every shard");
}

/// Live store lifecycle (serve/loadtest).
inline void AddRefreshOptions(OptionSet* opts) {
  opts->Group("live store lifecycle");
  opts->AddDouble("refresh-interval", 0,
                  "poll the log every S seconds (0 = off)");
  opts->AddString("log-tail", "", "log file to tail (default <dir>/log.tsv)");
  opts->AddString("store-persist", "",
                  "save each swapped snapshot here (.shard<i> per shard)");
}

/// Network server edge (`serve --listen`): declared once, here.
inline void AddListenOptions(OptionSet* opts) {
  opts->Group("network edge (server)");
  opts->AddInt("listen", -1,
               "serve the wire protocol on this TCP port instead of the "
               "REPL (0 = ephemeral port)");
  opts->AddString("port-file", "",
                  "write the bound port here once listening");
  opts->AddInt("shard-index", -1,
               "serve only this shard's slice of the store (with "
               "--num-shards; -1 = the whole store)");
  opts->AddInt("num-shards", 1,
               "total shards the store is partitioned over");
  opts->AddInt("max-conns", 64, "accepted-connection ceiling");
  opts->AddInt("max-inflight", 128,
               "per-connection in-flight request ceiling");
}

/// Network client edge (`loadtest --connect`): declared once, here.
inline void AddConnectOptions(OptionSet* opts) {
  opts->Group("network edge (client)");
  opts->AddString("connect", "",
                  "replay against remote shard servers at "
                  "host:port[,host:port...] instead of in-process");
  opts->AddInt("pipeline", 32,
               "pipelined requests in flight per connection");
  opts->AddBool("verify-local", false,
                "also serve the mix in-process and require bit-identical "
                "ranking hashes (exits non-zero on mismatch)");
}

}  // namespace tools
}  // namespace optselect

#endif  // OPTSELECT_TOOLS_OPTIONS_H_
