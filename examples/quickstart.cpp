// Quickstart: diversify a hand-built result list with OptSelect.
//
// This example uses only the core public API — no query log, no index —
// to show the minimal structure a caller must provide: candidates with
// relevance and surrogate vectors, specializations with probabilities and
// reference result vectors.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/diversifier.h"
#include "core/optselect.h"
#include "core/utility.h"
#include "text/analyzer.h"

using optselect::core::Candidate;
using optselect::core::DiversificationInput;
using optselect::core::DiversifyParams;
using optselect::core::OptSelectDiversifier;
using optselect::core::SpecializationProfile;
using optselect::core::UtilityComputer;
using optselect::core::UtilityMatrix;

int main() {
  // One analyzer provides the shared vocabulary for every snippet.
  optselect::text::Analyzer analyzer;

  // The ambiguous query: "jaguar". Candidate results mix three senses.
  struct Raw {
    const char* title;
    const char* snippet;
    double relevance;
  };
  const Raw raw_candidates[] = {
      {"Jaguar cars", "jaguar luxury car dealership new models pricing",
       1.00},
      {"Jaguar XF review", "jaguar xf sedan road test car review engine",
       0.95},
      {"Jaguar XE pricing", "jaguar xe compact car price trim levels",
       0.93},
      {"Jaguar habitat", "jaguar big cat rainforest habitat prey range",
       0.80},
      {"Jaguar conservation", "jaguar wildlife conservation amazon jungle",
       0.78},
      {"Fender Jaguar", "fender jaguar electric guitar pickups review",
       0.70},
      {"Jaguar guitar setup", "fender jaguar guitar bridge setup strings",
       0.65},
      {"Jacksonville Jaguars", "jaguars nfl football team season schedule",
       0.60},
  };

  // Specializations mined from a query log (here: stated directly), with
  // their popularity-derived probabilities and reference result snippets.
  struct RawSpec {
    const char* query;
    double probability;
    std::initializer_list<const char*> reference_snippets;
  };
  const RawSpec raw_specs[] = {
      {"jaguar car", 0.55,
       {"jaguar luxury car dealership models",
        "jaguar xf sedan car review",
        "jaguar xe compact car price"}},
      {"jaguar animal", 0.30,
       {"jaguar big cat rainforest habitat",
        "jaguar wildlife conservation jungle"}},
      {"jaguar guitar", 0.15,
       {"fender jaguar electric guitar review",
        "fender jaguar guitar bridge setup"}},
  };

  DiversificationInput input;
  input.query = "jaguar";
  for (const Raw& r : raw_candidates) {
    Candidate c;
    c.doc = static_cast<optselect::DocId>(input.candidates.size());
    c.relevance = r.relevance;
    c.vector = analyzer.AnalyzeToVector(r.snippet);
    input.candidates.push_back(std::move(c));
  }
  for (const RawSpec& rs : raw_specs) {
    SpecializationProfile sp;
    sp.query = rs.query;
    sp.probability = rs.probability;
    for (const char* snippet : rs.reference_snippets) {
      sp.results.push_back(analyzer.AnalyzeToVector(snippet));
    }
    input.specializations.push_back(std::move(sp));
  }

  // Utility matrix (Definition 2). The threshold c (Section 5) zeroes the
  // weak similarity every snippet shares through the word "jaguar", so
  // "useful for a specialization" means genuinely about it.
  UtilityMatrix utilities =
      UtilityComputer(UtilityComputer::Options{0.3}).Compute(input);
  DiversifyParams params;
  params.k = 5;
  params.lambda = 0.15;
  OptSelectDiversifier optselect;
  std::vector<size_t> picks = optselect.Select(input, utilities, params);

  std::printf("Query: \"%s\" — specializations:\n", input.query.c_str());
  for (const SpecializationProfile& sp : input.specializations) {
    std::printf("  %-16s P(q'|q) = %.2f\n", sp.query.c_str(),
                sp.probability);
  }
  std::printf("\nRelevance-only top-%zu:\n", params.k);
  for (size_t i = 0; i < params.k; ++i) {
    std::printf("  %zu. %s\n", i + 1, raw_candidates[i].title);
  }
  std::printf("\nOptSelect diversified top-%zu:\n", params.k);
  for (size_t rank = 0; rank < picks.size(); ++rank) {
    std::printf("  %zu. %s\n", rank + 1, raw_candidates[picks[rank]].title);
  }
  return 0;
}
