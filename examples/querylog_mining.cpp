// Query-log mining walkthrough: generate an AOL-like synthetic log, build
// the query-flow graph, segment sessions, train the recommender, and run
// Algorithm 1 — printing what each stage produces. This is the paper's
// Section 3 pipeline in isolation (no retrieval involved).
//
//   $ ./examples/querylog_mining [--sessions N]

#include <cstdio>
#include <cstring>

#include "querylog/query_flow_graph.h"
#include "querylog/session_segmenter.h"
#include "querylog/synthetic_log.h"
#include "recommend/ambiguity_detector.h"
#include "recommend/shortcuts_recommender.h"
#include "synth/topic_universe.h"

using namespace optselect;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  size_t num_sessions = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      num_sessions = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  // 1. Planted universe + synthetic log.
  synth::TopicUniverseConfig ucfg;
  ucfg.num_topics = 12;
  synth::TopicUniverse universe = synth::GenerateTopicUniverse(ucfg, 150);
  querylog::SyntheticLogConfig lcfg = querylog::AolLikeConfig();
  lcfg.num_sessions = num_sessions;
  querylog::SyntheticLogResult log_result =
      querylog::SyntheticLogGenerator(lcfg).Generate(universe.topics,
                                                     universe.noise_queries);
  std::printf("1. synthetic log: %zu records, %zu planted ambiguous topics, "
              "%zu refinement events\n",
              log_result.log.size(), universe.topics.size(),
              log_result.refinement_events);

  // 2. Query-flow graph.
  querylog::QueryFlowGraph graph =
      querylog::QueryFlowGraph::Build(log_result.log, {});
  std::printf("2. query-flow graph: %zu nodes, %zu edges\n",
              graph.num_nodes(), graph.num_edges());
  const std::string& demo_root = universe.topics[0].root_query;
  const std::string& demo_spec = universe.topics[0].intents[0].query;
  std::printf("   chaining probability '%s' -> '%s': %.3f\n",
              demo_root.c_str(), demo_spec.c_str(),
              graph.ChainingProbability(demo_root, demo_spec));

  // 3. Logical sessions.
  std::vector<querylog::Session> sessions =
      querylog::SessionSegmenter().Segment(log_result.log, &graph);
  double mean_len = 0;
  for (const querylog::Session& s : sessions) {
    mean_len += static_cast<double>(s.record_indices.size());
  }
  mean_len /= static_cast<double>(sessions.size());
  std::printf("3. sessions: %zu logical sessions, mean length %.2f\n",
              sessions.size(), mean_len);

  // 4. Recommendation model.
  recommend::ShortcutsRecommender recommender;
  recommender.Train(log_result.log, sessions);
  std::printf("4. recommender trained over %zu source queries\n",
              recommender.num_source_queries());

  // 5. Algorithm 1 on every planted root (and a few noise queries).
  recommend::AmbiguityDetector detector(&recommender);
  std::printf("5. AmbiguousQueryDetect:\n");
  for (const synth::TopicSpec& topic : universe.topics) {
    recommend::SpecializationSet set = detector.Detect(topic.root_query);
    std::printf("   %-12s %s", topic.root_query.c_str(),
                set.ambiguous() ? "AMBIGUOUS " : "plain     ");
    for (const auto& sp : set.items) {
      std::printf(" %s(%.2f)", sp.query.c_str(), sp.probability);
    }
    std::printf("\n");
  }
  size_t noise_flagged = 0;
  for (size_t i = 0; i < 50 && i < universe.noise_queries.size(); ++i) {
    if (detector.Detect(universe.noise_queries[i]).ambiguous()) {
      ++noise_flagged;
    }
  }
  std::printf("   noise queries flagged ambiguous: %zu / 50\n",
              noise_flagged);
  return 0;
}
