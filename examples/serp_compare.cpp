// Side-by-side SERP comparison: one ambiguous query, four algorithms
// (OptSelect, xQuAD, IASelect, MMR) plus the DPH baseline, each result
// annotated with the subtopic(s) it is judged relevant to — making the
// diversification behaviour of each method visible at a glance.
//
//   $ ./examples/serp_compare [--query Q] [--k N]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"

using namespace optselect;  // NOLINT(build/namespaces)

namespace {

// "12" / "-" / "1" — which subtopics of `topic` doc is relevant to.
std::string SubtopicTags(const pipeline::Testbed& testbed,
                         const corpus::TrecTopic& topic, DocId doc) {
  std::string tags;
  for (uint32_t s = 0; s < topic.subtopics.size(); ++s) {
    if (testbed.corpus().qrels.Relevant(topic.id, s, doc)) {
      tags += static_cast<char>('1' + (s % 9));
    }
  }
  return tags.empty() ? "-" : tags;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query;
  size_t k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query = argv[++i];
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  std::printf("Building testbed...\n");
  pipeline::Testbed testbed(pipeline::TestbedConfig::Small());
  if (query.empty()) query = testbed.universe().topics[0].root_query;

  const corpus::TrecTopic* topic =
      testbed.corpus().topics.FindByQuery(query);
  if (topic == nullptr) {
    std::fprintf(stderr, "query '%s' is not a testbed topic; topics are:\n",
                 query.c_str());
    for (const auto& t : testbed.corpus().topics.topics()) {
      std::fprintf(stderr, "  %s\n", t.query.c_str());
    }
    return 1;
  }

  pipeline::PipelineParams params;
  params.num_candidates = 150;
  params.results_per_specialization = 10;
  params.threshold_c = 0.3;
  params.diversify.k = k;
  pipeline::DiversificationPipeline pipe(&testbed, params);

  std::printf("\nQuery \"%s\" — %zu planted subtopics:\n", query.c_str(),
              topic->subtopics.size());
  for (uint32_t s = 0; s < topic->subtopics.size(); ++s) {
    std::printf("  [%c] %-20s P = %.2f\n",
                static_cast<char>('1' + (s % 9)),
                topic->subtopics[s].query.c_str(),
                topic->subtopics[s].probability);
  }

  // Baseline SERP.
  std::printf("\n%-11s", "rank");
  std::printf("%-14s", "DPH");
  for (const std::string& name : core::AvailableDiversifiers()) {
    std::printf("%-14s", name.c_str());
  }
  std::printf("\n");

  std::vector<DocId> baseline = pipe.BaselineRanking(query, k);
  std::vector<std::vector<DocId>> serps;
  for (const std::string& name : core::AvailableDiversifiers()) {
    auto algo = std::move(core::MakeDiversifier(name)).value();
    serps.push_back(pipe.Run(query, *algo).ranking);
  }

  for (size_t rank = 0; rank < k; ++rank) {
    std::printf("%-11zu", rank + 1);
    if (rank < baseline.size()) {
      std::printf("%-14s",
                  SubtopicTags(testbed, *topic, baseline[rank]).c_str());
    } else {
      std::printf("%-14s", "");
    }
    for (const auto& serp : serps) {
      if (rank < serp.size()) {
        std::printf("%-14s",
                    SubtopicTags(testbed, *topic, serp[rank]).c_str());
      } else {
        std::printf("%-14s", "");
      }
    }
    std::printf("\n");
  }
  std::printf("\nCell = subtopics the result is relevant to "
              "('-' = not relevant to any).\n");
  return 0;
}
