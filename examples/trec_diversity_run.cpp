// End-to-end TREC-style diversity run over the synthetic testbed:
// build everything (log → mining → index), diversify each topic's query
// with a chosen algorithm, and report α-NDCG / IA-P against the
// subtopic-level qrels — a single-command miniature of the paper's
// Section 5 evaluation.
//
//   $ ./examples/trec_diversity_run [--algo optselect|xquad|iaselect|mmr]
//                                   [--topics N] [--c F] [--lambda F]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/factory.h"
#include "eval/diversity_evaluator.h"
#include "pipeline/diversification_pipeline.h"
#include "pipeline/testbed.h"
#include "util/table_printer.h"

using namespace optselect;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  std::string algo_name = "optselect";
  size_t num_topics = 20;
  double threshold_c = 0.0;
  double lambda = 0.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--algo") == 0 && i + 1 < argc) {
      algo_name = argv[++i];
    } else if (std::strcmp(argv[i], "--topics") == 0 && i + 1 < argc) {
      num_topics = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--c") == 0 && i + 1 < argc) {
      threshold_c = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--lambda") == 0 && i + 1 < argc) {
      lambda = std::atof(argv[++i]);
    }
  }

  auto algo_result = core::MakeDiversifier(algo_name);
  if (!algo_result.ok()) {
    std::fprintf(stderr, "%s\n", algo_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<core::Diversifier> algo = std::move(algo_result).value();

  std::printf("Building the synthetic TREC-shaped testbed (%zu topics)...\n",
              num_topics);
  pipeline::TestbedConfig config = pipeline::TestbedConfig::TrecShaped();
  config.universe.num_topics = num_topics;
  pipeline::Testbed testbed(config);
  std::printf("  %zu documents indexed, %zu log records mined\n\n",
              testbed.corpus().store.size(),
              testbed.log_result().log.size());

  pipeline::PipelineParams params;
  params.num_candidates = 1000;
  params.results_per_specialization = 20;
  params.threshold_c = threshold_c;
  params.diversify.k = 1000;
  params.diversify.lambda = lambda;
  pipeline::DiversificationPipeline pipe(&testbed, params);

  eval::Run baseline;
  baseline.name = "DPH baseline";
  eval::Run diversified;
  diversified.name = algo->name();

  size_t ambiguous = 0;
  for (const corpus::TrecTopic& topic : testbed.corpus().topics.topics()) {
    baseline.rankings[topic.id] =
        pipe.BaselineRanking(topic.query, params.diversify.k);
    pipeline::DiversifiedResult r = pipe.Run(topic.query, *algo);
    diversified.rankings[topic.id] = r.ranking;
    if (r.diversified) {
      ++ambiguous;
      if (ambiguous <= 3) {
        std::printf("topic %-12s -> %zu specializations:", topic.query.c_str(),
                    r.specializations.size());
        for (const auto& sp : r.specializations.items) {
          std::printf(" %s(%.2f)", sp.query.c_str(), sp.probability);
        }
        std::printf("\n");
      }
    }
  }
  std::printf("  ... %zu of %zu topics detected as ambiguous\n\n", ambiguous,
              testbed.corpus().topics.size());

  eval::DiversityEvaluator evaluator(&testbed.corpus().topics,
                                     &testbed.corpus().qrels);
  util::TablePrinter tp;
  tp.SetHeader({"run", "aN@5", "aN@10", "aN@20", "IA@5", "IA@10", "IA@20"});
  for (const eval::Run* run : {&baseline, &diversified}) {
    eval::MetricRow row = evaluator.Evaluate(*run);
    tp.AddRow({row.run_name, util::TablePrinter::Num(row.alpha_ndcg[5], 3),
               util::TablePrinter::Num(row.alpha_ndcg[10], 3),
               util::TablePrinter::Num(row.alpha_ndcg[20], 3),
               util::TablePrinter::Num(row.ia_precision[5], 3),
               util::TablePrinter::Num(row.ia_precision[10], 3),
               util::TablePrinter::Num(row.ia_precision[20], 3)});
  }
  std::printf("%s\n", tp.ToString().c_str());
  return 0;
}
